"""Tests for the publication store and the concurrent query service."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.anonymity import BaselinePublication, anatomize
from repro.core import burel, perturb_table
from repro.engine import run as engine_run
from repro.query import batch_estimates, evaluate_workload, make_workload
from repro.service import (
    CertificationError,
    PublicationStore,
    QueryService,
    certify_publication,
    publish_run,
)


@pytest.fixture(scope="module")
def table():
    from repro.dataset import CENSUS_QI_ORDER, make_census

    return make_census(4_000, seed=7, correlation=0.3, qi_names=CENSUS_QI_ORDER)


@pytest.fixture(scope="module")
def publications(table):
    return {
        "generalized": burel(table, 2.0).published,
        "perturbed": perturb_table(table, 4.0, rng=np.random.default_rng(29)),
        "anatomy": anatomize(table, 4, rng=np.random.default_rng(1)),
        "baseline": BaselinePublication(table),
    }


@pytest.fixture(scope="module")
def requirements():
    return {
        "generalized": {"beta": 2.0},
        "perturbed": {"beta": 4.0},
        "anatomy": {"l": 4},
        "baseline": {"beta": 2.0},
    }


@pytest.fixture(scope="module")
def workload(table):
    return make_workload(table.schema, 150, lam=3, theta=0.1, rng=13)


@pytest.fixture()
def store(tmp_path):
    return PublicationStore(tmp_path / "store")


class TestStoreRoundTrip:
    @pytest.mark.parametrize(
        "kind", ["generalized", "perturbed", "anatomy", "baseline"]
    )
    def test_lossless(self, store, publications, requirements, kind):
        original = publications[kind]
        record = store.put(original, requirement=requirements[kind])
        restored = store.get(record.pub_id)
        assert np.array_equal(restored.source.qi, original.source.qi)
        assert np.array_equal(restored.source.sa, original.source.sa)
        if hasattr(original, "classes"):
            for a, b in zip(original.classes, restored.classes):
                assert np.array_equal(a.rows, b.rows)
                assert a.box == b.box
                assert np.array_equal(a.sa_counts, b.sa_counts)
        if hasattr(original, "groups"):
            assert restored.l == original.l
            for a, b in zip(original.groups, restored.groups):
                assert np.array_equal(a.rows, b.rows)
                assert np.array_equal(a.sa_counts, b.sa_counts)
        if hasattr(original, "scheme"):
            assert np.array_equal(
                restored.sa_perturbed, original.sa_perturbed
            )
            assert np.array_equal(
                restored.scheme.matrix, original.scheme.matrix
            )
            assert restored.scheme.c_lm == original.scheme.c_lm

    def test_schema_hierarchies_survive(self, store, publications, requirements):
        record = store.put(
            publications["generalized"],
            requirement=requirements["generalized"],
        )
        schema = store.get(record.pub_id).source.schema
        original = publications["generalized"].schema
        for restored_attr, attr in zip(schema.qi, original.qi):
            assert restored_attr.name == attr.name
            assert restored_attr.kind == attr.kind
            if attr.hierarchy is not None:
                assert (
                    [n.label for n in restored_attr.hierarchy.leaves]
                    == [n.label for n in attr.hierarchy.leaves]
                )
                assert restored_attr.hierarchy.height == attr.hierarchy.height
        assert schema.sensitive.values == original.sensitive.values

    def test_restored_answers_bit_identical(
        self, store, table, publications, requirements, workload
    ):
        record = store.put(
            publications["generalized"],
            requirement=requirements["generalized"],
        )
        restored = store.get(record.pub_id)
        direct = batch_estimates(
            table, {"x": publications["generalized"]}, workload
        )["x"]
        roundtripped = batch_estimates(
            restored.source, {"x": restored}, workload
        )["x"]
        assert np.array_equal(direct, roundtripped)

    def test_put_is_idempotent(self, store, publications, requirements):
        first = store.put(
            publications["anatomy"], requirement=requirements["anatomy"]
        )
        second = store.put(
            publications["anatomy"], requirement=requirements["anatomy"]
        )
        assert first.pub_id == second.pub_id
        assert store.ids() == [first.pub_id]

    def test_resolve_prefix(self, store, publications, requirements):
        record = store.put(
            publications["generalized"],
            requirement=requirements["generalized"],
        )
        assert store.resolve(record.pub_id[:8]) == record.pub_id
        with pytest.raises(KeyError, match="no publication"):
            store.resolve("ffff" * 16)

    def test_corrupt_payload_detected(
        self, store, publications, requirements
    ):
        record = store.put(
            publications["baseline"], requirement=requirements["baseline"]
        )
        payload = store.root / "objects" / record.pub_id / "payload.npz"
        blob = bytearray(payload.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload.write_bytes(bytes(blob))
        with pytest.raises(Exception):  # hash mismatch or zip error
            store.get(record.pub_id)


class TestCertificationGate:
    def test_refuses_beta_violation(self, store, publications):
        with pytest.raises(CertificationError, match="measured beta"):
            store.put(publications["generalized"], requirement={"beta": 0.01})
        assert store.ids() == []  # nothing written on refusal

    def test_refuses_t_violation(self, store, publications):
        with pytest.raises(CertificationError, match="measured t"):
            store.put(publications["generalized"], requirement={"t": 1e-6})

    def test_refuses_l_violation(self, store, publications):
        with pytest.raises(CertificationError, match="measured l"):
            store.put(publications["anatomy"], requirement={"l": 10})

    def test_refuses_perturbed_beta_violation(self, store, publications):
        with pytest.raises(CertificationError, match="scheme caps"):
            store.put(publications["perturbed"], requirement={"beta": 0.5})

    def test_perturbed_rejects_fabricated_priors(self, table, publications):
        """Regression: the gate must not trust the scheme's self-declared
        priors — a scheme fit to a fake distribution passes its own cap
        check but violates the real contract."""
        import dataclasses

        from repro.core import PerturbationScheme, PerturbedTable

        fake = np.full(table.sa_cardinality, 1.0 / table.sa_cardinality)
        scheme = PerturbationScheme.fit(fake, beta=4.0)
        forged = PerturbedTable(
            source=table,
            sa_perturbed=publications["perturbed"].sa_perturbed,
            scheme=scheme,
        )
        with pytest.raises(CertificationError, match="priors|domain"):
            certify_publication(forged, {"beta": 4.0})
        # A wrong domain is also refused.
        genuine = publications["perturbed"].scheme
        truncated = dataclasses.replace(
            genuine,
            domain=genuine.domain[:-1],
            probs=genuine.probs[:-1],
            caps=genuine.caps[:-1],
            gammas=genuine.gammas[:-1],
            alphas=genuine.alphas[:-1],
            matrix=genuine.matrix[:-1, :-1],
        )
        forged = PerturbedTable(
            source=table,
            sa_perturbed=publications["perturbed"].sa_perturbed,
            scheme=truncated,
        )
        with pytest.raises(CertificationError, match="domain"):
            certify_publication(forged, {"beta": 4.0})

    def test_perturbed_rejects_group_contracts(self, store, publications):
        with pytest.raises(CertificationError, match="beta-likeness"):
            store.put(
                publications["perturbed"], requirement={"beta": 4.0, "l": 2}
            )

    def test_baseline_l_contract(self, table, publications):
        distinct = int(np.count_nonzero(table.sa_counts()))
        audit = certify_publication(
            publications["baseline"], {"l": distinct}
        )
        assert audit["privacy"]["l"] == distinct
        with pytest.raises(CertificationError, match="distinct SA"):
            certify_publication(
                publications["baseline"], {"l": distinct + 1}
            )

    def test_enhanced_beta_contract_enforced(self):
        """Regression: a group violating the enhanced f(p) cap must be
        refused even when its relative gain stays below beta."""
        from repro.dataset import (
            Attribute,
            Schema,
            SensitiveAttribute,
            Table,
            publish,
        )

        schema = Schema(
            [Attribute.numerical("Age", 0, 19)],
            SensitiveAttribute("D", ("a", "b")),
        )
        sa = np.array([0] * 10 + [1] * 10)
        table = Table(schema, np.arange(20)[:, None], sa)
        # One EC of 9 a's + 1 b, one EC with the rest: q = (0.9, 0.1)
        # against p = (0.5, 0.5).  Gain 0.8 <= 10, but the enhanced cap
        # is (1 + ln 2) * 0.5 ~= 0.847 < 0.9.
        rows = np.arange(20)
        published = publish(
            table, [np.concatenate([rows[:9], rows[10:11]]),
                    np.concatenate([rows[9:10], rows[11:]])]
        )
        with pytest.raises(CertificationError, match="enhanced"):
            certify_publication(published, {"beta": 10.0, "enhanced": True})
        audit = certify_publication(
            published, {"beta": 10.0, "enhanced": False}
        )
        assert audit["privacy"]["beta"] <= 10.0

    def test_reput_refreshes_contract(self, store, publications):
        """Regression: re-admitting identical content under a different
        certified requirement must not return stale provenance."""
        first = store.put(publications["anatomy"], requirement={"l": 2})
        assert first.requirement == {"l": 2}
        second = store.put(publications["anatomy"], requirement={"l": 4})
        assert second.pub_id == first.pub_id
        assert second.requirement == {"l": 4}
        assert store.record(first.pub_id).requirement == {"l": 4}

    def test_requirement_validation(self, store, publications):
        with pytest.raises(ValueError, match="unknown requirement"):
            store.put(publications["generalized"], requirement={"gamma": 1})
        with pytest.raises(ValueError, match="at least one"):
            store.put(publications["generalized"], requirement={})

    def test_audit_evidence_recorded(
        self, store, publications, requirements
    ):
        record = store.put(
            publications["generalized"],
            requirement=requirements["generalized"],
        )
        assert record.audit["privacy"]["beta"] <= 2.0 + 1e-9
        assert "risk" in record.audit
        manifest = json.loads(
            (
                store.root / "objects" / record.pub_id / "manifest.json"
            ).read_text()
        )
        assert manifest["requirement"] == {"beta": 2.0}


class TestEngineHook:
    def test_pipeline_sink_receives_result(self, table):
        seen = []
        result = engine_run("burel", table, beta=2.0, sink=seen.append)
        assert seen == [result]

    def test_publish_run_records_provenance(self, store, table):
        result, record = publish_run(
            store, "anatomy", table, requirement={"l": 4}, rng=1, l=4
        )
        assert record.kind == "anatomy"
        assert record.algorithm == "anatomy"
        assert record.params["l"] == 4
        assert record.seed == 1
        assert record.n_groups == len(result.published.groups)
        assert store.record(record.pub_id).pub_id == record.pub_id

    def test_publish_run_refusal_stores_nothing(self, store, table):
        with pytest.raises(CertificationError):
            publish_run(
                store, "burel", table, requirement={"beta": 0.01}, beta=2.0
            )
        assert store.ids() == []


class TestQueryService:
    @pytest.fixture()
    def loaded_store(self, store, publications, requirements):
        ids = {
            kind: store.put(
                publications[kind], requirement=requirements[kind]
            ).pub_id
            for kind in publications
        }
        return store, ids

    @pytest.mark.parametrize(
        "kind", ["generalized", "perturbed", "anatomy", "baseline"]
    )
    def test_bit_identical_to_direct_evaluation(
        self, loaded_store, table, publications, workload, kind
    ):
        store, ids = loaded_store
        with QueryService(store, workers=2, max_batch=32) as service:
            served = service.answer(ids[kind], workload)
        direct = batch_estimates(table, {kind: publications[kind]}, workload)[
            kind
        ]
        assert np.array_equal(served, direct)

    def test_profiles_match_evaluate_workload(
        self, loaded_store, table, publications, workload
    ):
        from repro.metrics.errors import error_profile
        from repro.query import answer_precise_batch

        store, ids = loaded_store
        direct = evaluate_workload(table, publications, workload)
        precise = answer_precise_batch(table, workload)
        with QueryService(store) as service:
            for kind in publications:
                served = service.answer(ids[kind], workload)
                assert error_profile(precise, served) == direct[kind]

    def test_concurrent_clients_one_publication(
        self, loaded_store, table, publications, workload
    ):
        store, ids = loaded_store
        direct = batch_estimates(
            table, {"x": publications["generalized"]}, workload
        )["x"]
        out = np.empty(len(workload))
        with QueryService(store, workers=3, max_batch=16) as service:
            pub_id = ids["generalized"]

            def client(offset: int):
                futures = [
                    (i, service.submit(pub_id, workload[i]))
                    for i in range(offset, len(workload), 4)
                ]
                for i, future in futures:
                    out[i] = future.result()

            threads = [
                threading.Thread(target=client, args=(c,)) for c in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats_snapshot()
        assert np.array_equal(out, direct)
        assert stats["requests"] == len(workload)
        assert stats["batches"] >= 1

    def test_lru_eviction(self, loaded_store, workload):
        store, ids = loaded_store
        with QueryService(store, cache_size=1) as service:
            for pub_id in ids.values():
                service.answer(pub_id, workload[:5])
            stats = service.stats_snapshot()
        assert stats["cache_misses"] == len(ids)
        assert stats["cache_evictions"] >= len(ids) - 1

    def test_unknown_publication_surfaces_error(self, loaded_store, workload):
        store, _ = loaded_store
        with QueryService(store) as service:
            future = service.submit("deadbeef" * 8, workload[0])
            with pytest.raises(KeyError):
                future.result(timeout=10)
            # Regression: failed loads must not leak per-id load locks.
            assert service._load_locks == {}

    def test_prefix_alias_shares_lru_slot(
        self, loaded_store, table, publications, workload
    ):
        """Regression: a prefix lookup must alias the canonical cache
        entry, not occupy (and immediately thrash) a second slot."""
        store, ids = loaded_store
        pub_id = ids["baseline"]
        with QueryService(store, cache_size=1) as service:
            service.answer(pub_id[:10], workload[:3])
            service.answer(pub_id, workload[:3])
            stats = service.stats_snapshot()
        assert stats["cache_misses"] == 1
        assert stats["cache_evictions"] == 0

    def test_closed_service_rejects_submissions(self, loaded_store, workload):
        store, ids = loaded_store
        service = QueryService(store)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(ids["baseline"], workload[0])
        service.close()  # idempotent

    def test_prefix_ids_work(self, loaded_store, table, publications, workload):
        store, ids = loaded_store
        with QueryService(store) as service:
            served = service.answer(ids["baseline"][:10], workload[:20])
        direct = batch_estimates(
            table, {"x": publications["baseline"]}, workload[:20]
        )["x"]
        assert np.array_equal(served, direct)


class TestServiceCli:
    @pytest.fixture()
    def data_csv(self, tmp_path, table):
        import csv

        schema = table.schema
        path = tmp_path / "data.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["Age", "Education", "Salary"])
            age = table.schema.qi_index("Age")
            edu = table.schema.qi_index("Education")
            for i in range(table.n_rows):
                writer.writerow(
                    [
                        int(table.qi[i, age]),
                        int(table.qi[i, edu]),
                        schema.sensitive.values[int(table.sa[i])],
                    ]
                )
        return path

    def test_publish_then_query(self, data_csv, tmp_path, capsys):
        from repro.cli import run

        store_dir = tmp_path / "pubs"
        code = run(
            [
                "publish", str(data_csv),
                "--store", str(store_dir),
                "--qi", "Age,Education",
                "--numerical", "Age,Education",
                "--sensitive", "Salary",
                "--algorithm", "burel",
                "--beta", "2",
                "--verbose",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "certified against beta=2.0" in captured
        assert "stages:" in captured
        pub_id = [
            line.split("id: ", 1)[1]
            for line in captured.splitlines()
            if line.startswith("id: ")
        ][0]

        out = tmp_path / "answers.json"
        code = run(
            [
                "query",
                "--store", str(store_dir),
                "--id", pub_id[:12],
                "--queries", "50",
                "--theta", "0.1",
                "-o", str(out),
                "--verbose",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "micro-batches" in captured
        payload = json.loads(out.read_text())
        assert payload["publication"] == pub_id
        assert len(payload["estimates"]) == 50

    def test_publish_refusal_exit_code(self, data_csv, tmp_path, capsys):
        from repro.cli import run

        code = run(
            [
                "publish", str(data_csv),
                "--store", str(tmp_path / "pubs"),
                "--qi", "Age",
                "--numerical", "Age",
                "--sensitive", "Salary",
                "--algorithm", "burel",
                "--beta", "2",
                "--require-beta", "0.01",
            ]
        )
        assert code == 1
        assert "refused" in capsys.readouterr().err

    def test_query_unknown_id_clean_error(self, tmp_path, capsys):
        from repro.cli import run
        from repro.service import PublicationStore

        PublicationStore(tmp_path / "pubs")  # empty store
        code = run(
            [
                "query",
                "--store", str(tmp_path / "pubs"),
                "--id", "deadbeef",
            ]
        )
        assert code == 1
        assert "no publication" in capsys.readouterr().err

    def test_generalize_anatomy(self, data_csv, tmp_path, capsys):
        from repro.cli import run

        out = tmp_path / "anat.csv"
        code = run(
            [
                "generalize", str(data_csv),
                "--qi", "Age,Education",
                "--numerical", "Age,Education",
                "--sensitive", "Salary",
                "--algorithm", "anatomy",
                "--l", "3",
                "-o", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "anatomy groups" in captured
        assert "measured privacy" in captured
        assert (tmp_path / "anat.json").exists()
        sidecar = json.loads((tmp_path / "anat.json").read_text())
        assert sidecar["l"] == 3
        from repro.io import read_csv_rows

        rows = read_csv_rows(out)
        assert len(rows) == 4_000
        assert "group" in rows[0]

    def test_stage_timings_behind_verbose(self, data_csv, tmp_path, capsys):
        from repro.cli import run

        args = [
            "generalize", str(data_csv),
            "--qi", "Age",
            "--numerical", "Age",
            "--sensitive", "Salary",
            "--beta", "2",
            "-o", str(tmp_path / "out.csv"),
        ]
        assert run(args) == 0
        assert "stages:" not in capsys.readouterr().out
        assert run(args + ["--verbose"]) == 0
        assert "stages:" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Version lineage (PR 7): name/parent manifests, versions(), latest()
# ----------------------------------------------------------------------


class TestVersionLineage:
    def test_records_carry_name_and_parent(self, store, publications,
                                           requirements):
        root = store.put(
            publications["generalized"],
            requirement=requirements["generalized"],
            name="census",
        )
        child = store.put(
            publications["anatomy"],
            requirement=requirements["anatomy"],
            name="census",
            parent=root,
        )
        assert root.name == child.name == "census"
        assert root.parent_id is None
        assert child.parent_id == root.pub_id

    def test_lineage_survives_reopen(self, tmp_path, publications,
                                     requirements):
        root_dir = tmp_path / "lineage"
        store = PublicationStore(root_dir)
        root = store.put(
            publications["generalized"],
            requirement=requirements["generalized"],
            name="census",
        )
        child = store.put(
            publications["anatomy"],
            requirement=requirements["anatomy"],
            name="census",
            parent=root.pub_id,
        )
        grand = store.put(
            publications["perturbed"],
            requirement=requirements["perturbed"],
            name="census",
            parent=child.pub_id[:12],  # prefixes resolve
        )
        reopened = PublicationStore(root_dir)
        chain = reopened.versions("census")
        assert [r.pub_id for r in chain] == [
            root.pub_id, child.pub_id, grand.pub_id
        ]
        assert [r.parent_id for r in chain] == [
            None, root.pub_id, child.pub_id
        ]
        assert reopened.latest("census").pub_id == grand.pub_id

    def test_parent_before_child_with_siblings(self, store, publications,
                                               requirements):
        root = store.put(
            publications["generalized"],
            requirement=requirements["generalized"],
            name="d",
        )
        kids = sorted(
            (
                store.put(
                    publications["anatomy"],
                    requirement=requirements["anatomy"],
                    name="d",
                    parent=root,
                ),
                store.put(
                    publications["perturbed"],
                    requirement=requirements["perturbed"],
                    name="d",
                    parent=root,
                ),
            ),
            key=lambda r: r.pub_id,
        )
        chain = store.versions("d")
        assert chain[0].pub_id == root.pub_id
        assert [r.pub_id for r in chain[1:]] == [r.pub_id for r in kids]

    def test_dangling_parent_refused(self, store, publications,
                                     requirements):
        with pytest.raises(KeyError):
            store.put(
                publications["generalized"],
                requirement=requirements["generalized"],
                name="x",
                parent="0" * 64,
            )
        assert store.versions("x") == []

    def test_unknown_name(self, store):
        assert store.versions("nope") == []
        with pytest.raises(KeyError):
            store.latest("nope")

    def test_unnamed_records_join_no_lineage(self, store, publications,
                                             requirements):
        record = store.put(
            publications["generalized"],
            requirement=requirements["generalized"],
        )
        assert record.name is None and record.parent_id is None
        assert all(
            record.pub_id != r.pub_id for r in store.versions("census")
        )
