"""Tests for EC materialization (§4.5)."""

import numpy as np
import pytest

from repro.core import (
    BetaLikeness,
    HilbertRetriever,
    RandomRetriever,
    beta_eligibility,
    bi_split,
    dp_partition,
)
from repro.core.retrieve import qi_space_keys


@pytest.fixture()
def census_setup(census_small):
    model = BetaLikeness(3.0)
    partition = dp_partition(census_small.sa_distribution(), model, margin=0.5)
    return census_small, partition


class TestQiSpaceKeys:
    def test_one_key_per_row(self, census_small):
        keys = qi_space_keys(census_small)
        assert keys.shape == (census_small.n_rows,)

    def test_identical_tuples_share_keys(self, census_small):
        keys = qi_space_keys(census_small)
        qi = census_small.qi
        same = np.nonzero((qi == qi[0]).all(axis=1))[0]
        assert len(set(keys[same].tolist())) == 1


class TestHilbertRetriever:
    def test_bucket_sizes_match_table(self, census_setup):
        table, partition = census_setup
        retr = HilbertRetriever(table, partition)
        assert int(retr.bucket_sizes().sum()) == table.n_rows

    def test_materialize_partitions_rows(self, census_setup):
        table, partition = census_setup
        retr = HilbertRetriever(table, partition)
        specs = bi_split(
            partition,
            beta_eligibility(partition.f_min),
            bucket_sizes=retr.bucket_sizes(),
        )
        groups = retr.materialize(specs)
        all_rows = np.concatenate(groups)
        assert len(all_rows) == table.n_rows
        assert len(np.unique(all_rows)) == table.n_rows

    def test_groups_match_specs(self, census_setup):
        table, partition = census_setup
        retr = HilbertRetriever(table, partition)
        specs = bi_split(
            partition,
            beta_eligibility(partition.f_min),
            bucket_sizes=retr.bucket_sizes(),
        )
        groups = retr.materialize(specs)
        bucket_of = partition.bucket_of_value()
        for spec, rows in zip(specs, groups):
            got = np.zeros(len(partition), dtype=np.int64)
            for r in rows:
                got[bucket_of[int(table.sa[r])]] += 1
            assert np.array_equal(got, spec)

    def test_wrong_spec_totals_rejected(self, census_setup):
        table, partition = census_setup
        retr = HilbertRetriever(table, partition)
        bad = [np.ones(len(partition), dtype=np.int64)]
        with pytest.raises(ValueError, match="consume each bucket"):
            retr.materialize(bad)

    def test_deterministic_without_rng(self, census_setup):
        table, partition = census_setup
        specs = None
        outs = []
        for _ in range(2):
            retr = HilbertRetriever(table, partition)
            if specs is None:
                specs = bi_split(
                    partition,
                    beta_eligibility(partition.f_min),
                    bucket_sizes=retr.bucket_sizes(),
                )
            outs.append(retr.materialize(specs))
        for a, b in zip(outs[0], outs[1]):
            assert np.array_equal(np.sort(a), np.sort(b))

    def test_locality_beats_random(self, census_setup):
        """The Hilbert heuristic must yield tighter boxes than random
        draws — the §4.5 design goal and our ablation axis."""
        from repro.dataset.published import publish
        from repro.metrics import average_information_loss

        table, partition = census_setup
        retr_h = HilbertRetriever(table, partition)
        specs = bi_split(
            partition,
            beta_eligibility(partition.f_min),
            bucket_sizes=retr_h.bucket_sizes(),
        )
        ail_h = average_information_loss(
            publish(table, retr_h.materialize(specs))
        )
        retr_r = RandomRetriever(
            table, partition, rng=np.random.default_rng(0)
        )
        ail_r = average_information_loss(
            publish(table, retr_r.materialize(specs))
        )
        assert ail_h < ail_r


class TestAliveOrder:
    def test_left_right_symmetry(self):
        from repro.core.retrieve import _AliveOrder

        order = _AliveOrder(5)
        assert order.find_left(4) == 4
        assert order.find_right(0) == 0
        order.kill(2)
        assert order.find_left(2) == 1
        assert order.find_right(2) == 3
        order.kill(1)
        order.kill(3)
        assert order.find_left(3) == 0
        assert order.find_right(1) == 4
        order.kill(0)
        assert order.find_left(3) == -1
        order.kill(4)
        assert order.find_right(0) == 5
        assert order.alive == 0

    def test_random_seeded_retrieval_partitions_exactly(self, census_setup):
        """Regression: random seeds used to exhaust the right frontier
        and silently duplicate ``rows[-1]``."""
        table, partition = census_setup
        retr = HilbertRetriever(
            table, partition, rng=np.random.default_rng(99)
        )
        specs = bi_split(
            partition,
            beta_eligibility(partition.f_min),
            bucket_sizes=retr.bucket_sizes(),
        )
        groups = retr.materialize(specs)
        rows = np.concatenate(groups)
        assert len(rows) == table.n_rows
        assert len(np.unique(rows)) == table.n_rows


class TestRandomRetriever:
    def test_partitions_rows(self, census_setup):
        table, partition = census_setup
        retr = RandomRetriever(table, partition, rng=np.random.default_rng(5))
        specs = bi_split(
            partition,
            beta_eligibility(partition.f_min),
            bucket_sizes=retr.bucket_sizes(),
        )
        groups = retr.materialize(specs)
        rows = np.concatenate(groups)
        assert len(np.unique(rows)) == table.n_rows

    def test_exhaustion_detected(self, census_setup):
        table, partition = census_setup
        retr = RandomRetriever(table, partition)
        huge = [retr.bucket_sizes() + 1]
        with pytest.raises(ValueError, match="exhausted"):
            retr.materialize(huge)
