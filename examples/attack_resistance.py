#!/usr/bin/env python3
"""Resistance to inference attacks (Section 7).

Mounts the paper's attacks against BUREL publications and against an
Anatomy baseline:

* the Naive Bayes attack of Eqs. 15–17 (accuracy should stay pinned at
  the most-frequent-salary-class share, ≈ 4.84%);
* an EM-style deFinetti attack (ineffective against β-bounded ECs,
  noticeably better than random against small-ℓ Anatomy);
* skewness and similarity gain measurements (bounded by 1 + β).

Run:  python examples/attack_resistance.py
"""

import numpy as np

from repro import burel
from repro.anonymity import anatomize
from repro.attacks import (
    definetti_attack,
    naive_bayes_attack,
    naive_bayes_attack_raw,
    random_assignment_baseline,
    salary_bands,
    similarity_gain,
    skewness_gain,
)
from repro.dataset import make_census


def main() -> None:
    # Strong QI-SA dependence makes the attacks as dangerous as possible.
    table = make_census(
        20_000, seed=7, correlation=0.9,
        qi_names=("Age", "Gender", "Education"),
    )
    raw = naive_bayes_attack_raw(table)
    print(
        f"Naive Bayes on the RAW table: accuracy {raw.accuracy:.2%} "
        f"(majority baseline {raw.majority_baseline:.2%})\n"
    )

    print("Naive Bayes against BUREL (Eq. 17 conditionals):")
    for beta in (1.0, 2.0, 3.0, 4.0, 5.0):
        published = burel(table, beta).published
        attack = naive_bayes_attack(published)
        print(f"  beta={beta}: accuracy {attack.accuracy:.2%}")

    print("\nSkewness / similarity gains on BUREL(beta=2):")
    published = burel(table, 2.0).published
    per_value = skewness_gain(published)
    bands = similarity_gain(published, salary_bands())
    print(
        f"  worst per-value confidence jump: x{per_value.max_gain:.2f} "
        f"(bounded by 1+beta=3)"
    )
    print(f"  worst salary-band confidence jump: x{bands.max_gain:.2f}")

    print("\ndeFinetti attack:")
    anatomy = anatomize(table, 3, rng=np.random.default_rng(0))
    attack = definetti_attack(anatomy, max_iterations=10)
    baseline = random_assignment_baseline(anatomy)
    print(
        f"  vs 3-diverse Anatomy: accuracy {attack.accuracy:.2%} "
        f"(random in-group assignment: {baseline.accuracy:.2%})"
    )
    attack_b = definetti_attack(burel(table, 2.0).published, max_iterations=10)
    print(
        f"  vs BUREL(beta=2) classes: accuracy {attack_b.accuracy:.2%} "
        f"(majority baseline: {attack_b.majority_baseline:.2%})"
    )


if __name__ == "__main__":
    main()
