"""Tests for the unified staged anonymization engine."""

import numpy as np
import pytest

from repro.core import BetaLikeness, burel
from repro.core.retrieve import HilbertRetriever, RandomRetriever
from repro.dataset import DEFAULT_QI, make_census
from repro.engine import (
    STAGES,
    EngineJob,
    PreparedTable,
    RunResult,
    algorithm_names,
    run,
    run_many,
)
from repro.metrics import measured_beta, measured_t


@pytest.fixture(scope="module")
def census_tiny():
    """A small random table every algorithm (incl. fulldomain) can chew."""
    return make_census(1_500, seed=3, qi_names=DEFAULT_QI)


class TestRegistry:
    def test_all_six_algorithms_registered(self):
        assert algorithm_names() == [
            "anatomy", "burel", "fulldomain", "mondrian", "perturb", "sabre",
        ]

    def test_unknown_algorithm_rejected(self, census_tiny):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run("nope", census_tiny)

    def test_unknown_parameter_rejected(self, census_tiny):
        with pytest.raises(ValueError, match="unknown parameter"):
            run("burel", census_tiny, betta=2.0)

    def test_empty_table_rejected(self, census_tiny):
        empty = census_tiny.subset(np.array([], dtype=np.int64))
        for name in algorithm_names():
            with pytest.raises(ValueError, match="empty table"):
                run(name, empty)


class TestRunResult:
    @pytest.mark.parametrize("name", ["burel", "sabre", "mondrian"])
    def test_uniform_shape(self, census_tiny, name):
        result = run(name, census_tiny)
        assert isinstance(result, RunResult)
        assert result.algorithm == name
        assert result.elapsed_seconds > 0
        assert list(result.stage_seconds) == [
            s for s in STAGES if s in result.stage_seconds
        ], "stage timings must follow canonical order"
        assert result.elapsed_seconds >= sum(result.stage_seconds.values()) - 1e-6

    def test_burel_provenance(self, census_tiny):
        result = run("burel", census_tiny, beta=2.0)
        assert set(result.stage_seconds) == set(STAGES)
        assert "partition" in result.provenance
        assert "specs" in result.provenance
        assert isinstance(result.provenance["model"], BetaLikeness)
        assert result.params["beta"] == 2.0
        assert len(result.provenance["specs"]) == len(result.published)

    def test_int_seed_accepted(self, census_tiny):
        a = run("burel", census_tiny, rng=5)
        b = run("burel", census_tiny, rng=np.random.default_rng(5))
        rows_a = [ec.rows for ec in a.published]
        rows_b = [ec.rows for ec in b.published]
        for ra, rb in zip(rows_a, rows_b):
            assert np.array_equal(ra, rb)


class TestPrivacyGuarantees:
    """Every registered algorithm's output satisfies its own model."""

    def test_burel_beta_likeness(self, census_tiny):
        result = run("burel", census_tiny, beta=2.0)
        assert measured_beta(result.published) <= 2.0 + 1e-9

    def test_sabre_t_closeness(self, census_tiny):
        result = run("sabre", census_tiny, t=0.15)
        assert measured_t(result.published) <= 0.15 + 1e-9

    def test_mondrian_beta_likeness(self, census_tiny):
        result = run("mondrian", census_tiny, beta=3.0)
        assert measured_beta(result.published) <= 3.0 + 1e-9

    def test_fulldomain_beta_likeness(self, census_tiny):
        result = run("fulldomain", census_tiny, kind="beta", beta=4.0)
        assert measured_beta(result.published) <= 4.0 + 1e-9

    def test_anatomy_l_diversity(self, census_tiny):
        result = run("anatomy", census_tiny, l=2)
        assert all(
            group.sa_distribution().max() <= 0.5 + 1e-9
            or np.count_nonzero(group.sa_counts) >= 2
            for group in result.published.groups
        )
        assert min(
            np.count_nonzero(g.sa_counts) for g in result.published.groups
        ) >= 2

    def test_perturb_transition_guarantee(self, census_tiny):
        result = run("perturb", census_tiny, beta=2.0)
        scheme = result.provenance["scheme"]
        # Column-stochastic transition matrix ...
        np.testing.assert_allclose(scheme.matrix.sum(axis=0), 1.0)
        # ... whose per-row transition ratios obey Theorem 2's gamma
        # bound (the (rho1, rho2)-privacy mechanics).
        for i in range(scheme.m):
            row = scheme.matrix[i]
            assert row.max() / row.min() <= scheme.gammas[i] + 1e-9


class TestLegacyEquivalence:
    """Engine-routed BUREL is byte-identical to the legacy burel() call."""

    @pytest.mark.parametrize("rng_seed", [None, 11])
    def test_burel_identical(self, census_small, rng_seed):
        def rng():
            return None if rng_seed is None else np.random.default_rng(rng_seed)

        legacy = burel(census_small, 2.0, rng=rng())
        routed = run("burel", census_small, beta=2.0, rng=rng())
        assert len(legacy.published) == len(routed.published)
        for a, b in zip(legacy.published, routed.published):
            assert np.array_equal(a.rows, b.rows)
            assert a.box == b.box
            assert np.array_equal(a.sa_counts, b.sa_counts)

    @pytest.mark.parametrize("rng_seed", [None, 7])
    def test_vectorized_matches_scalar_reference(self, census_small, rng_seed):
        from repro.core import beta_eligibility, bi_split, dp_partition

        partition = dp_partition(
            census_small.sa_distribution(), BetaLikeness(3.0), margin=0.5
        )

        def retr(vectorized):
            rng = None if rng_seed is None else np.random.default_rng(rng_seed)
            return HilbertRetriever(
                census_small, partition, rng=rng, vectorized=vectorized
            )

        fast = retr(True)
        specs = bi_split(
            partition,
            beta_eligibility(partition.f_min),
            bucket_sizes=fast.bucket_sizes(),
        )
        for a, b in zip(
            fast.materialize(specs), retr(False).materialize(specs)
        ):
            assert np.array_equal(a, b)


class TestRngContract:
    """``rng=None`` means deterministic for every retriever."""

    def test_random_retriever_none_is_deterministic(self, census_small):
        from repro.core import beta_eligibility, bi_split, dp_partition

        partition = dp_partition(
            census_small.sa_distribution(), BetaLikeness(3.0), margin=0.5
        )
        outs = []
        specs = None
        for _ in range(2):
            retr = RandomRetriever(census_small, partition, rng=None)
            if specs is None:
                specs = bi_split(
                    partition,
                    beta_eligibility(partition.f_min),
                    bucket_sizes=retr.bucket_sizes(),
                )
            outs.append(retr.materialize(specs))
        for a, b in zip(outs[0], outs[1]):
            assert np.array_equal(a, b)

    def test_random_retriever_shuffles_with_rng(self, census_small):
        from repro.core import beta_eligibility, bi_split, dp_partition

        partition = dp_partition(
            census_small.sa_distribution(), BetaLikeness(3.0), margin=0.5
        )
        plain = RandomRetriever(census_small, partition, rng=None)
        specs = bi_split(
            partition,
            beta_eligibility(partition.f_min),
            bucket_sizes=plain.bucket_sizes(),
        )
        seeded = RandomRetriever(
            census_small, partition, rng=np.random.default_rng(1)
        )
        assert any(
            not np.array_equal(a, b)
            for a, b in zip(plain.materialize(specs), seeded.materialize(specs))
        )


class TestRunMany:
    def test_matches_individual_runs(self, census_tiny):
        jobs = [
            EngineJob("burel", {"beta": 2.0}),
            EngineJob("burel", {"beta": 4.0}),
            EngineJob("mondrian", {"beta": 2.0}),
        ]
        batch = run_many(census_tiny, jobs)
        for job, result in zip(jobs, batch):
            solo = run(job.algorithm, census_tiny, **dict(job.params))
            assert len(result.published) == len(solo.published)
            for a, b in zip(result.published, solo.published):
                assert np.array_equal(a.rows, b.rows)

    def test_tuple_shorthand(self, census_tiny):
        results = run_many(census_tiny, [("perturb", {"beta": 2.0})])
        assert results[0].algorithm == "perturb"

    def test_shared_preprocessing_computed_once(self, census_tiny, monkeypatch):
        import repro.engine.batch as batch_mod

        calls = {"keys": 0}
        real = batch_mod.qi_space_keys

        def counting(table):
            calls["keys"] += 1
            return real(table)

        monkeypatch.setattr(batch_mod, "qi_space_keys", counting)
        run_many(
            census_tiny,
            [("burel", {"beta": b}) for b in (1.0, 2.0, 4.0)],
        )
        assert calls["keys"] == 1

    def test_bad_table_index_rejected(self, census_tiny):
        with pytest.raises(ValueError, match="references table"):
            run_many(census_tiny, [EngineJob("burel", table=1)])

    def test_mismatched_shared_table_rejected(self, census_tiny):
        other = make_census(500, seed=5, qi_names=DEFAULT_QI)
        with pytest.raises(ValueError, match="different table"):
            run("burel", other, shared=PreparedTable(census_tiny))

    def test_prepared_table_row_bucket_memoized(self, census_tiny):
        from repro.core import dp_partition

        prepared = PreparedTable(census_tiny)
        partition = dp_partition(
            census_tiny.sa_distribution(), BetaLikeness(2.0), margin=0.5
        )
        a = prepared.row_buckets(partition)
        b = prepared.row_buckets(partition)
        assert a is b


class TestCliIntegration:
    def test_seed_is_forwarded_to_engine(self, monkeypatch, tmp_path):
        import csv

        from repro import cli

        path = tmp_path / "data.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["Age", "Disease"])
            rows = [(20 + i, "flu" if i % 3 else "cold") for i in range(30)]
            writer.writerows(rows)

        # The CLI dispatches through the repro.api facade, which calls
        # the engine's run(); spy there to see the forwarded rng.
        import repro.api.dataset as api_dataset

        seen = {}
        real_run = api_dataset.engine_run

        def spy(name, table, *, rng=None, **params):
            seen["algorithm"] = name
            seen["rng"] = rng
            return real_run(name, table, rng=rng, **params)

        monkeypatch.setattr(api_dataset, "engine_run", spy)
        code = cli.run(
            [
                "generalize", str(path),
                "--qi", "Age", "--numerical", "Age",
                "--sensitive", "Disease",
                "--beta", "2", "--seed", "42",
                "-o", str(tmp_path / "out.csv"),
            ]
        )
        assert code == 0
        assert seen["algorithm"] == "burel"
        assert seen["rng"] == 42

    def test_algorithm_flag_backed_by_registry(self, tmp_path):
        import csv

        from repro import cli

        path = tmp_path / "data.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["Age", "Disease"])
            rows = [(20 + i % 40, ["flu", "cold", "ache"][i % 3]) for i in range(60)]
            writer.writerows(rows)
        for algorithm in ("mondrian", "sabre"):
            out = tmp_path / f"{algorithm}.csv"
            code = cli.run(
                [
                    "generalize", str(path),
                    "--qi", "Age", "--numerical", "Age",
                    "--sensitive", "Disease",
                    "--algorithm", algorithm,
                    "--beta", "2",
                    "-o", str(out),
                ]
            )
            assert code == 0
            assert out.exists()
