"""Information-loss metrics for generalized publications (Section 4.1).

Implements Eqs. 2–5 of the paper:

* numerical attribute loss ``IL_NA(G) = (u - l) / (U - L)`` (Eq. 2);
* categorical attribute loss ``IL_CA(G) = |leaves(lca)| / |leaves(H)|``,
  zero when the class is not generalized on that attribute (Eq. 3);
* per-class loss ``IL(G) = sum_i w_i * IL_{A_i}(G)`` with weights
  defaulting to ``1/d`` (Eq. 4);
* table-level Average Information Loss
  ``AIL = sum_G |G| * IL(G) / |DB|`` (Eq. 5).

Two auxiliary metrics common in the anonymization literature are included
for ablations: the discernibility metric and the average EC size.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..dataset.published import EquivalenceClass, GeneralizedTable
from ..dataset.schema import AttributeKind, Schema


def il_attribute(
    schema: Schema, attr_index: int, lo: int, hi: int
) -> float:
    """Information loss of one attribute interval of a class box."""
    attr = schema.qi[attr_index]
    if attr.kind is AttributeKind.NUMERICAL:
        if attr.width == 0:
            return 0.0
        return (hi - lo) / attr.width
    # Categorical: Eq. 3 via the LCA of the rank interval.
    return attr.hierarchy.generalization_cost(lo, hi)


def il_class(
    schema: Schema,
    ec: EquivalenceClass,
    weights: Sequence[float] | None = None,
) -> float:
    """Total information loss ``IL(G)`` of one EC (Eq. 4)."""
    d = schema.n_qi
    if weights is None:
        weights = [1.0 / d] * d
    elif len(weights) != d or abs(sum(weights) - 1.0) > 1e-9:
        raise ValueError("weights must match QI count and sum to 1")
    return float(
        sum(
            w * il_attribute(schema, j, lo, hi)
            for j, (w, (lo, hi)) in enumerate(zip(weights, ec.box))
        )
    )


def average_information_loss(
    published: GeneralizedTable, weights: Sequence[float] | None = None
) -> float:
    """``AIL`` over a published table (Eq. 5)."""
    total = sum(
        ec.size * il_class(published.schema, ec, weights) for ec in published
    )
    return float(total / published.n_rows)


def discernibility(published: GeneralizedTable) -> float:
    """Discernibility metric: ``sum_G |G|^2`` (extra utility diagnostic)."""
    return float(sum(ec.size**2 for ec in published))


def average_class_size(published: GeneralizedTable) -> float:
    """Mean EC size (extra utility diagnostic)."""
    sizes = np.array([ec.size for ec in published])
    return float(sizes.mean())
