"""Tests for the §3/§7 model extensions."""

import numpy as np
import pytest

from repro.anonymity import mondrian
from repro.core import burel
from repro.extensions import (
    SAGrouping,
    TwoSidedBetaLikeness,
    grouped_burel,
    measured_group_beta,
    measured_negative_beta,
    measured_proximity_beta,
    p_mondrian,
    proximity_caps,
    proximity_constraint,
    two_sided_constraint,
)
from repro.metrics import measured_beta


class TestTwoSided:
    def test_reduces_to_paper_model_when_one_sided(self):
        model = TwoSidedBetaLikeness(2.0)
        p = np.array([0.1, 0.9])
        assert model.lower(p).tolist() == [0.0, 0.0]
        assert model.complies(p, np.array([0.0, 1.0])) is False  # upper breaks
        assert model.complies(p, np.array([0.05, 0.95]))  # absence-ish fine

    def test_lower_bound_mirrors_upper(self):
        model = TwoSidedBetaLikeness(2.0, negative_beta=2.0)
        p = 0.05  # infrequent: both branches linear
        assert model.upper(p) == pytest.approx(3 * 0.05)
        assert model.lower(p) == pytest.approx(0.05 / 3)

    def test_frequent_values_use_log_branch(self):
        model = TwoSidedBetaLikeness(3.0, negative_beta=3.0)
        p = 0.6
        assert model.lower(p) == pytest.approx(0.6 / (1 - np.log(0.6)))

    def test_compliance_two_sided(self):
        model = TwoSidedBetaLikeness(1.0, negative_beta=1.0)
        p = np.array([0.5, 0.5])
        assert model.complies(p, np.array([0.5, 0.5]))
        assert not model.complies(p, np.array([1.0, 0.0]))  # loser too low

    def test_max_negative_gain(self):
        model = TwoSidedBetaLikeness(1.0, negative_beta=1.0)
        p = np.array([0.5, 0.5])
        q = np.array([0.75, 0.25])
        assert model.max_negative_gain(p, q) == pytest.approx(0.5)
        assert model.max_negative_gain(p, p) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TwoSidedBetaLikeness(0.0)
        with pytest.raises(ValueError):
            TwoSidedBetaLikeness(1.0, negative_beta=0.0)

    def test_mondrian_enforcement(self, census_small):
        constraint = two_sided_constraint(
            census_small.sa_distribution(), beta=3.0, negative_beta=3.0
        )
        result = mondrian(census_small, constraint)
        assert measured_beta(result.published) <= 3.0 + 1e-9
        assert measured_negative_beta(result.published) <= 1.0  # ratio form

    def test_two_sided_at_least_as_lossy(self, census_small):
        from repro.anonymity import l_mondrian
        from repro.metrics import average_information_loss

        one_sided = l_mondrian(census_small, 3.0)
        constraint = two_sided_constraint(
            census_small.sa_distribution(), beta=3.0, negative_beta=3.0
        )
        two_sided = mondrian(census_small, constraint)
        assert average_information_loss(
            two_sided.published
        ) >= average_information_loss(one_sided.published) - 1e-9


class TestGrouped:
    def test_grouping_from_lists(self):
        g = SAGrouping.from_lists(6, [[0, 1, 2], [3, 4, 5]], ["a", "b"])
        assert g.n_groups == 2
        assert g.group_of.tolist() == [0, 0, 0, 1, 1, 1]

    def test_grouping_must_cover(self):
        with pytest.raises(ValueError, match="cover"):
            SAGrouping.from_lists(4, [[0, 1]])
        with pytest.raises(ValueError, match="two groups"):
            SAGrouping.from_lists(3, [[0, 1], [1, 2]])

    def test_grouping_from_hierarchy(self, patients):
        g = SAGrouping.from_hierarchy(patients.schema.sensitive, depth=1)
        assert g.n_groups == 2
        # nervous diseases share a group; circulatory share the other.
        s = patients.schema.sensitive
        assert (
            g.group_of[s.code_of("headache")]
            == g.group_of[s.code_of("epilepsy")]
        )
        assert (
            g.group_of[s.code_of("headache")]
            != g.group_of[s.code_of("angina")]
        )

    def test_counts_aggregation(self):
        g = SAGrouping.from_lists(4, [[0, 3], [1, 2]])
        counts = g.counts(np.array([5, 1, 2, 7]))
        assert counts.tolist() == [12, 3]

    def test_grouped_burel_guarantees_group_level(self, census_small):
        from repro.attacks import salary_bands

        grouping = SAGrouping.from_lists(50, salary_bands())
        beta = 1.0
        result = grouped_burel(census_small, beta, grouping)
        assert measured_group_beta(result.published, grouping) <= beta + 1e-9
        rows = np.concatenate([ec.rows for ec in result.published])
        assert len(np.unique(rows)) == census_small.n_rows

    def test_grouped_burel_keeps_leaf_values(self, census_small):
        from repro.attacks import salary_bands

        grouping = SAGrouping.from_lists(50, salary_bands())
        result = grouped_burel(census_small, 2.0, grouping)
        total = np.sum([ec.sa_counts for ec in result.published], axis=0)
        assert np.array_equal(total, census_small.sa_counts())

    def test_group_beta_looser_than_leaf_beta(self, census_small):
        """Plain BUREL's group-level exposure never exceeds leaf-level."""
        from repro.attacks import salary_bands

        grouping = SAGrouping.from_lists(50, salary_bands())
        published = burel(census_small, 2.0).published
        assert measured_group_beta(published, grouping) <= (
            measured_beta(published) + 1e-9
        )


class TestProximity:
    def test_w1_equals_plain_beta(self, census_small):
        published = burel(census_small, 2.0).published
        assert measured_proximity_beta(published, 1) == pytest.approx(
            measured_beta(published)
        )

    def test_caps_shape(self, census_small):
        caps = proximity_caps(census_small.sa_distribution(), 2.0, 5)
        assert caps.shape == (46,)
        assert (caps > 0).all()

    def test_constraint_enforced_by_mondrian(self, census_small):
        beta, w = 2.0, 5
        result = p_mondrian(census_small, beta, w)
        assert measured_proximity_beta(result.published, w) <= beta + 1e-9

    def test_proximity_stricter_than_pointwise(self, census_small):
        """(β, w)-proximity-likeness implies plain β-likeness... is not
        generally true; but the enforced publication must at least keep
        window exposure below pointwise exposure of an unconstrained
        comparator."""
        beta, w = 2.0, 5
        constrained = p_mondrian(census_small, beta, w)
        assert measured_proximity_beta(constrained.published, w) <= beta + 1e-9
        # Plain BUREL at the same beta has no window guarantee; measure it.
        plain = burel(census_small, beta).published
        assert measured_proximity_beta(plain, w) >= 0.0

    def test_invalid_window(self, census_small):
        with pytest.raises(ValueError):
            proximity_caps(census_small.sa_distribution(), 2.0, 0)
        with pytest.raises(ValueError):
            proximity_caps(census_small.sa_distribution(), 2.0, 51)

    def test_constraint_rejects_empty(self, census_small):
        constraint = proximity_constraint(
            census_small.sa_distribution(), 2.0, 3
        )
        assert not constraint(np.zeros(50, dtype=np.int64), 0)
