"""Synthetic CENSUS dataset matching the paper's Table 3.

The paper evaluates on an IPUMS CENSUS extract of 500 000 tuples with six
attributes.  That extract is not redistributable and the reproduction
environment is offline, so this module generates a synthetic stand-in
with the same *shape* (see DESIGN.md §3):

* exact Table 3 schema and cardinalities — Age (79 values, numerical),
  Gender (2, categorical height 1), Education Level (17, numerical),
  Marital Status (6, categorical height 2), Work Class (10, categorical
  height 3), Salary Class (50 values, the SA);
* the SA frequency profile reported in §6: least frequent value 0.2018%,
  most frequent 4.8402%, with the most frequent class sitting at code 12
  and the least frequent at code 49 (a unimodal profile peaked at 12);
* a tunable QI↔SA correlation so query-utility and attack experiments
  exercise realistic dependence between salary and age / education /
  work class.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import functools
import math

import numpy as np

from ..hierarchy import Hierarchy
from .schema import Attribute, Schema, SensitiveAttribute
from .table import Table

#: Fraction of tuples holding the least / most frequent salary class (§6).
LEAST_FREQUENT = 0.002018
MOST_FREQUENT = 0.048402

#: Salary-class codes of the frequency extremes, as reported in §6.
MOST_FREQUENT_CODE = 12
LEAST_FREQUENT_CODE = 49

#: Number of salary classes (Table 3).
N_SALARY_CLASSES = 50

#: QI attribute names in Table 3 order; the paper's default QI set is the
#: first three.
CENSUS_QI_ORDER = ("Age", "Gender", "Education", "Marital", "WorkClass")
DEFAULT_QI = CENSUS_QI_ORDER[:3]


def gender_hierarchy() -> Hierarchy:
    """Height-1 hierarchy: person -> {male, female}."""
    return Hierarchy.from_spec(("person", ["male", "female"]))


def marital_hierarchy() -> Hierarchy:
    """Height-2 hierarchy over 6 marital statuses."""
    return Hierarchy.from_spec(
        (
            "any-status",
            [
                ("ever-married", ["married", "separated", "divorced", "widowed"]),
                ("never-married", ["single", "partnered"]),
            ],
        )
    )


def work_class_hierarchy() -> Hierarchy:
    """Height-3 hierarchy over 10 work classes."""
    return Hierarchy.from_spec(
        (
            "any-work",
            [
                (
                    "employed",
                    [
                        (
                            "private-sector",
                            [
                                "private-small",
                                "private-large",
                                "self-employed-inc",
                                "self-employed-uninc",
                            ],
                        ),
                        ("government", ["federal-gov", "state-gov", "local-gov"]),
                    ],
                ),
                (
                    "not-employed",
                    [("out-of-workforce", ["unemployed", "retired", "never-worked"])],
                ),
            ],
        )
    )


def census_schema() -> Schema:
    """The Table 3 schema with all five QI attributes."""
    qi = [
        Attribute.numerical("Age", 17, 95),          # 79 distinct values
        Attribute.categorical("Gender", gender_hierarchy()),
        Attribute.numerical("Education", 1, 17),     # 17 distinct values
        Attribute.categorical("Marital", marital_hierarchy()),
        Attribute.categorical("WorkClass", work_class_hierarchy()),
    ]
    salary = SensitiveAttribute(
        "SalaryClass", tuple(f"salary-{i:02d}" for i in range(N_SALARY_CLASSES))
    )
    return Schema(qi, salary)


@functools.lru_cache(maxsize=8)
def salary_distribution(
    m: int = N_SALARY_CLASSES,
    p_min: float = LEAST_FREQUENT,
    p_max: float = MOST_FREQUENT,
    peak: int = MOST_FREQUENT_CODE,
    tail: int = LEAST_FREQUENT_CODE,
) -> tuple[float, ...]:
    """The overall salary-class distribution ``P``.

    Frequencies follow a stretched-exponential profile
    ``p_(r) = p_max * exp(-s * (r/(m-1))**k)`` over frequency ranks ``r``,
    with ``s = ln(p_max / p_min)`` fixing both extremes and ``k`` solved
    so the frequencies sum to one.  Ranks are then laid onto salary codes
    unimodally around ``peak`` so that the most frequent class is
    ``peak`` and the least frequent is ``tail`` (as in the paper's data).
    """
    if m < 2:
        raise ValueError("need at least two salary classes")
    s = math.log(p_max / p_min)
    grid = np.arange(m) / (m - 1)

    def total(k: float) -> float:
        return float(np.sum(p_max * np.exp(-s * grid**k)))

    lo_k, hi_k = 1e-3, 64.0
    if not (total(lo_k) < 1.0 < total(hi_k)):
        raise ValueError("frequency extremes are infeasible for a distribution")
    for _ in range(200):
        mid = 0.5 * (lo_k + hi_k)
        if total(mid) < 1.0:
            lo_k = mid
        else:
            hi_k = mid
    by_rank = p_max * np.exp(-s * grid ** (0.5 * (lo_k + hi_k)))

    # Assign ranks to codes unimodally around the peak: rank 0 at the
    # peak, then alternating outwards; the farthest code gets the last
    # rank.  With peak=12 in a 50-value domain, code 49 is farthest and
    # receives the minimum frequency, matching the paper.
    order = sorted(range(m), key=lambda c: (abs(c - peak), c))
    probs = np.empty(m)
    for rank, code in enumerate(order):
        probs[code] = by_rank[rank]
    probs /= probs.sum()  # remove the ~1e-12 solver residual
    if order[-1] != tail:
        raise AssertionError("profile layout no longer places the minimum at `tail`")
    return tuple(float(p) for p in probs)


def exact_sa_counts(n: int, probs: np.ndarray) -> np.ndarray:
    """Integer SA counts of total ``n`` via largest-remainder rounding.

    Every value with positive probability receives at least one tuple, so
    the published domain equals the intended domain (the paper's P has no
    zero entries).
    """
    if n < probs.size:
        raise ValueError(f"need at least {probs.size} tuples, got {n}")
    raw = probs * n
    counts = np.floor(raw).astype(np.int64)
    counts = np.maximum(counts, 1)
    deficit = n - int(counts.sum())
    if deficit > 0:
        remainders = raw - np.floor(raw)
        for idx in np.argsort(-remainders):
            if deficit == 0:
                break
            counts[idx] += 1
            deficit -= 1
    elif deficit < 0:
        for idx in np.argsort(-counts):
            if deficit == 0:
                break
            if counts[idx] > 1:
                counts[idx] -= 1
                deficit += 1
    if counts.sum() != n:
        raise AssertionError("count rounding failed to reach the target size")
    return counts


def _categorical_rows(p_matrix: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Sample one category per row from a per-row probability matrix."""
    cumulative = np.cumsum(p_matrix, axis=1)
    cumulative[:, -1] = 1.0 + 1e-12  # absorb float round-off
    draws = rng.random(p_matrix.shape[0])
    return (draws[:, None] > cumulative).sum(axis=1).astype(np.int64)


def make_census(
    n: int = 50_000,
    seed: int = 7,
    correlation: float = 0.3,
    qi_names: tuple[str, ...] | None = None,
) -> Table:
    """Generate the synthetic CENSUS table.

    Args:
        n: Number of tuples (the paper uses 100K–500K; defaults are
            laptop-scale).
        seed: Seed for the numpy PRNG; identical seeds give identical
            tables.
        correlation: Strength in ``[0, 1]`` of the dependence between the
            salary class and the QI attributes (0 = independent).
        qi_names: Optional subset of :data:`CENSUS_QI_ORDER` to keep, in
            the given order.  Defaults to all five attributes.

    Returns:
        A :class:`Table` with the Table 3 schema.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [0, 1]")
    schema = census_schema()
    rng = np.random.default_rng(seed)
    probs = np.asarray(salary_distribution(), dtype=float)
    counts = exact_sa_counts(n, probs)

    # SA codes laid out deterministically, then shuffled so row order is
    # not informative.
    sa = np.repeat(np.arange(N_SALARY_CLASSES, dtype=np.int64), counts)
    rng.shuffle(sa)

    level = sa / (N_SALARY_CLASSES - 1)  # normalized salary level in [0, 1]
    c = correlation

    # Age: higher salary classes skew older.
    age_mean = 30.0 + 30.0 * c * level + 15.0 * (1.0 - c) * 0.5
    age = np.clip(np.rint(rng.normal(age_mean, 11.0)), 17, 95).astype(np.int64)

    # Education: strongly tied to salary level when correlated.
    edu_mean = 3.0 + 11.0 * (c * level + (1.0 - c) * 0.5)
    education = np.clip(np.rint(rng.normal(edu_mean, 2.5)), 1, 17).astype(np.int64)

    # Gender: mild dependence.
    p_female = np.clip(0.5 - 0.12 * c * (level - 0.5), 0.0, 1.0)
    gender = (rng.random(n) < p_female).astype(np.int64)  # 0=male, 1=female

    # Marital status: driven by age (ever-married more likely when older).
    # Leaf order: married, separated, divorced, widowed, single, partnered.
    age_norm = (age - 17) / 78.0
    base_marital = np.array([0.32, 0.05, 0.12, 0.06, 0.33, 0.12])
    shift = np.array([0.30, 0.02, 0.08, 0.10, -0.38, -0.12])
    marital_probs = base_marital[None, :] + c * age_norm[:, None] * shift[None, :]
    marital_probs = np.clip(marital_probs, 0.01, None)
    marital_probs /= marital_probs.sum(axis=1, keepdims=True)
    marital = _categorical_rows(marital_probs, rng)

    # Work class: salary level pushes towards incorporated self-employment
    # and large-private / federal employers.
    # Leaf order: private-small, private-large, self-inc, self-uninc,
    #             federal, state, local, unemployed, retired, never-worked.
    base_work = np.array(
        [0.26, 0.18, 0.04, 0.07, 0.05, 0.06, 0.08, 0.10, 0.12, 0.04]
    )
    shift_w = np.array(
        [-0.10, 0.12, 0.08, 0.00, 0.05, 0.02, 0.00, -0.08, -0.05, -0.04]
    )
    work_probs = base_work[None, :] + c * level[:, None] * shift_w[None, :]
    work_probs = np.clip(work_probs, 0.005, None)
    work_probs /= work_probs.sum(axis=1, keepdims=True)
    work = _categorical_rows(work_probs, rng)

    qi = np.column_stack([age, gender, education, marital, work])
    table = Table(schema, qi, sa)
    if qi_names is not None:
        table = table.project(list(qi_names))
    return table
