"""SUM/AVG aggregate queries over a measure column.

The COUNT estimators (:mod:`repro.query.answer`) generalize directly to
SUM aggregates over a **measure column** — one of the table's QI
attributes, e.g. CENSUS ``Age``:

* **Precise**: the exact masked sum ``measure[rows matching QI ∧ SA]``.
* **Perturbed / Anatomy**: the estimate is a linear functional of a
  per-query histogram (per perturbed SA value, per Anatomy group); the
  SUM variant feeds the same functional the histogram of per-cell
  *measure sums* instead of counts.
* **Baseline**: the QI-match *measure sum* replaces the QI-match size,
  scaled by the SA range's global distribution mass.
* **Generalized**: under the in-box uniformity assumption a matching
  tuple's expected measure value is the midpoint of the EC box's
  measure interval (clipped to the query's measure range when
  constrained), so each EC contributes
  ``fraction × sa_matches × midpoint``.

AVG is SUM ÷ COUNT with both sides estimated by the same backend
(``nan`` where the COUNT estimate is zero).

Every batch path is **bit-identical** to the scalar references here
(:func:`answer_aggregate_precise`, :func:`answer_aggregate`): integer
measure sums are order-free and exact in float64, and the final float
operations are shared.  The cube variant
(:func:`~repro.query.cube.build_measure_cube`) swaps the per-query
masked ``bincount`` for one prefix-sum gather, same numbers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..dataset.table import Table
from .answer import (
    AnatomyAnswerer,
    BaselineAnswerer,
    GeneralizedAnswerer,
    PerturbedAnswerer,
)
from .cube import build_measure_cube, build_table_measure_cube
from .evaluate import (
    _check_source,
    _coerce_answerer,
    _encoded,
    _source_of,
    answer_precise_batch,
    batch_estimates,
    check_backend,
    mask_engine,
)
from .workload import CountQuery, EncodedWorkload, qi_mask

#: Supported aggregate operations.
AGGREGATE_OPS = ("sum", "avg")


def check_aggregate_op(op: str) -> str:
    """Validate an aggregate op name, returning it for chaining."""
    if op not in AGGREGATE_OPS:
        raise ValueError(
            f"unknown aggregate op {op!r}; expected one of {AGGREGATE_OPS}"
        )
    return op


def _measure(table: Table, measure_dim: int) -> np.ndarray:
    if not 0 <= measure_dim < table.schema.n_qi:
        raise ValueError(
            f"measure_dim {measure_dim} out of range for a "
            f"{table.schema.n_qi}-attribute QI"
        )
    return table.qi[:, measure_dim]


def _divide(sums: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """SUM ÷ COUNT with silent nan/inf where the denominator is zero."""
    with np.errstate(invalid="ignore", divide="ignore"):
        return sums / counts


# ----------------------------------------------------------------------
# Precise aggregates over the source table
# ----------------------------------------------------------------------


def answer_aggregate_precise(
    table: Table, query: CountQuery, measure_dim: int, op: str = "sum"
) -> float:
    """Scalar reference: the exact SUM/AVG over one query's matches."""
    check_aggregate_op(op)
    measure = _measure(table, measure_dim)
    lo, hi = query.sa_range
    mask = qi_mask(table, query)
    mask &= (table.sa >= lo) & (table.sa <= hi)
    total = float(measure[mask].sum())
    if op == "sum":
        return total
    return float(_divide(np.float64(total), np.float64(mask.sum())))


def batch_aggregate_precise(
    table: Table,
    queries: Sequence[CountQuery] | EncodedWorkload,
    measure_dim: int,
    op: str = "sum",
    *,
    artifacts=None,
    backend: str = "auto",
) -> np.ndarray:
    """Exact SUM/AVG answers for a whole workload, float64.

    Element-for-element equal to :func:`answer_aggregate_precise`.  The
    cube backend uses a measure-sum table cube (content-keyed as
    ``("cube_measure_table", table_digest, measure_dim)``); the bitmap
    path sums the measure over each query's full-predicate mask.
    """
    check_backend(backend)
    check_aggregate_op(op)
    enc = _encoded(table, queries, artifacts)
    measure = _measure(table, measure_dim)
    cube = _table_measure_cube(table, measure_dim, artifacts, backend)
    if cube is not None:
        lo = np.concatenate([enc.qi_lo, enc.sa_lo[:, None]], axis=1)
        hi = np.concatenate([enc.qi_hi, enc.sa_hi[:, None]], axis=1)
        sums = cube.range_sums(lo, hi)
    else:
        engine = mask_engine(table, artifacts)
        sums = np.empty(enc.n_queries)
        sa = table.sa
        for start, stop in engine._blocks(enc.n_queries):
            masks = engine.qi_mask_block(enc, start, stop)
            masks &= sa[None, :] >= enc.sa_lo[start:stop, None]
            masks &= sa[None, :] <= enc.sa_hi[start:stop, None]
            for i in range(stop - start):
                sums[start + i] = measure[masks[i]].sum()
    if op == "sum":
        return sums
    counts = answer_precise_batch(
        table, enc, artifacts=artifacts, backend=backend
    )
    return _divide(sums, counts)


def _table_measure_cube(table, measure_dim, artifacts, backend):
    """Measure-sum table cube under the same semantics as
    :func:`repro.query.evaluate.table_count_cube`."""
    if backend == "bitmap":
        return None
    if artifacts is not None:
        key = ("cube_measure_table", artifacts.table_key(table), measure_dim)
        if backend == "auto":
            return artifacts.get(key)
        return artifacts.get_or_build(
            key, lambda: build_table_measure_cube(table, measure_dim)
        )
    memo = table.__dict__.setdefault("_measure_table_cubes", {})
    if measure_dim in memo:
        return memo[measure_dim]
    if backend == "auto":
        return None
    cube = build_table_measure_cube(table, measure_dim)
    memo[measure_dim] = cube
    return cube


def _measure_cube(published, measure_dim, artifacts, backend):
    """Per-publication measure cube (``("cube_measure", digest, dim)``)."""
    if backend == "bitmap":
        return None
    memo = getattr(published, "__dict__", None)
    if memo is not None:
        cached = memo.get("_measure_cubes")
        if cached is not None and measure_dim in cached:
            return cached[measure_dim]
    if artifacts is not None:
        key = ("cube_measure", artifacts.publication_key(published), measure_dim)
        if backend == "auto":
            return artifacts.get(key)
        return artifacts.get_or_build(
            key, lambda: build_measure_cube(published, measure_dim)
        )
    if backend == "auto":
        return None
    cube = build_measure_cube(published, measure_dim)
    if memo is not None:
        memo.setdefault("_measure_cubes", {})[measure_dim] = cube
    return cube


# ----------------------------------------------------------------------
# Aggregate estimates over publications
# ----------------------------------------------------------------------


def _generalized_query_sum(
    answerer: GeneralizedAnswerer, enc: EncodedWorkload, i: int,
    measure_dim: int,
) -> float:
    """One query's SUM estimate over the EC boxes (uniform-in-box)."""
    sa_matches = (
        answerer.sa_prefix[:, enc.sa_hi[i] + 1]
        - answerer.sa_prefix[:, enc.sa_lo[i]]
    ).astype(float)
    fraction = np.ones(answerer.box_lo.shape[0])
    for dim in np.flatnonzero(enc.constrained[i]):
        b_lo = answerer.box_lo[:, dim]
        b_hi = answerer.box_hi[:, dim]
        overlap = (
            np.minimum(b_hi, enc.qi_hi[i, dim])
            - np.maximum(b_lo, enc.qi_lo[i, dim])
            + 1
        )
        fraction *= np.maximum(overlap, 0) / (b_hi - b_lo + 1)
    b_lo = answerer.box_lo[:, measure_dim]
    b_hi = answerer.box_hi[:, measure_dim]
    if enc.constrained[i, measure_dim]:
        # A matching tuple is uniform over the box ∩ query interval;
        # inverted (empty) overlaps are annihilated by fraction == 0.
        b_lo = np.maximum(b_lo, enc.qi_lo[i, measure_dim])
        b_hi = np.minimum(b_hi, enc.qi_hi[i, measure_dim])
    midpoints = (b_lo + b_hi) / 2.0
    return float((fraction * sa_matches * midpoints).sum())


def _generalized_measure_sums(
    answerer: GeneralizedAnswerer, enc: EncodedWorkload, measure_dim: int
) -> np.ndarray:
    return np.array(
        [
            _generalized_query_sum(answerer, enc, i, measure_dim)
            for i in range(enc.n_queries)
        ]
    )


def _cube_measure_sums(answerer, enc: EncodedWorkload, cube) -> np.ndarray:
    """SUM estimates from a measure cube's per-query histograms."""
    if isinstance(answerer, PerturbedAnswerer):
        observed = cube.payload_counts(enc)
        return (answerer.weight_rows(enc) * observed).sum(axis=1)
    if isinstance(answerer, AnatomyAnswerer):
        group_sums = cube.payload_counts(enc)
        return (group_sums * answerer.fraction_rows(enc)).sum(axis=1)
    qi_sums = cube.qi_counts(enc)  # full-SA lookup → QI-box measure sums
    return qi_sums * (
        answerer.sa_prefix[enc.sa_hi + 1] - answerer.sa_prefix[enc.sa_lo]
    )


def _masked_measure_sums(
    answerer, chunk: EncodedWorkload, masks: np.ndarray, measure: np.ndarray
) -> np.ndarray:
    """SUM estimates from shared QI masks (the bitmap path)."""
    out = np.empty(chunk.n_queries)
    if isinstance(answerer, PerturbedAnswerer):
        sa_perturbed = answerer.published.sa_perturbed
        m = answerer.published.source.sa_cardinality
        for i, query in enumerate(chunk.queries):
            mask = masks[i]
            observed = np.bincount(
                sa_perturbed[mask], weights=measure[mask], minlength=m
            )
            out[i] = (answerer._weights(query.sa_range) * observed).sum()
        return out
    if isinstance(answerer, AnatomyAnswerer):
        n_groups = answerer.sa_prefix.shape[0]
        for i, query in enumerate(chunk.queries):
            mask = masks[i]
            lo, hi = query.sa_range
            group_sums = np.bincount(
                answerer.group_of[mask],
                weights=measure[mask],
                minlength=n_groups,
            )
            fractions = answerer.sa_prefix[:, hi + 1] - answerer.sa_prefix[:, lo]
            out[i] = (group_sums * fractions).sum()
        return out
    qi_sums = np.array(
        [measure[masks[i]].sum() for i in range(chunk.n_queries)],
        dtype=np.int64,
    )
    return qi_sums * (
        answerer.sa_prefix[chunk.sa_hi + 1] - answerer.sa_prefix[chunk.sa_lo]
    )


def answer_aggregate(
    published, query: CountQuery, measure_dim: int, op: str = "sum"
) -> float:
    """Scalar-reference SUM/AVG estimate for one query.

    Accepts any of the four publication kinds (or a prebuilt answerer);
    the batch path (:func:`batch_aggregate_estimates`) is bit-identical
    to this under every backend.
    """
    check_aggregate_op(op)
    answerer = _coerce_answerer(published)
    source = answerer.published.source
    measure = _measure(source, measure_dim)
    enc = EncodedWorkload.encode(source.schema, (query,))
    if isinstance(answerer, GeneralizedAnswerer):
        total = _generalized_query_sum(answerer, enc, 0, measure_dim)
    else:
        masks = qi_mask(source, query)[None, :]
        total = float(_masked_measure_sums(answerer, enc, masks, measure)[0])
    if op == "sum":
        return total
    return float(_divide(np.float64(total), np.float64(answerer(query))))


def batch_aggregate_estimates(
    table: Table,
    publications: Mapping[str, object],
    queries: Sequence[CountQuery] | EncodedWorkload,
    measure_dim: int,
    op: str = "sum",
    *,
    artifacts=None,
    backend: str = "auto",
    served: "dict[str, str] | None" = None,
) -> "dict[str, np.ndarray]":
    """Batch SUM/AVG estimates of every publication over one workload.

    The aggregate sibling of
    :func:`~repro.query.evaluate.batch_estimates`: same backend
    semantics and ``served`` labels, same shared-mask bitmap path, and
    the same bit-identity guarantee against :func:`answer_aggregate`.
    """
    check_backend(backend)
    check_aggregate_op(op)
    enc = _encoded(table, queries, artifacts)
    answerers = {
        name: _coerce_answerer(value, artifacts)
        for name, value in publications.items()
    }
    for name, answerer in answerers.items():
        source = _source_of(answerer)
        if source is not None:
            _check_source(name, source, table, artifacts)
    if served is None:
        served = {}
    sums: dict[str, np.ndarray] = {}
    mask_users: dict[str, object] = {}
    for name, answerer in answerers.items():
        if isinstance(answerer, GeneralizedAnswerer):
            sums[name] = _generalized_measure_sums(answerer, enc, measure_dim)
            served[name] = "ec"
        elif isinstance(
            answerer, (PerturbedAnswerer, AnatomyAnswerer, BaselineAnswerer)
        ):
            cube = _measure_cube(
                answerer.published, measure_dim, artifacts, backend
            )
            if isinstance(answerer, BaselineAnswerer):
                usable = cube is not None and cube.table is not None
            else:
                usable = cube is not None and cube.payload is not None
            if usable:
                sums[name] = _cube_measure_sums(answerer, enc, cube)
                served[name] = "cube"
            else:
                mask_users[name] = answerer
                served[name] = "bitmap"
        else:
            raise TypeError(
                f"no aggregate estimator for {type(answerer).__name__!r}"
            )
    if mask_users:
        engine = mask_engine(table, artifacts)
        measure = _measure(table, measure_dim)
        for start, stop in engine._blocks(enc.n_queries):
            masks = engine.qi_mask_block(enc, start, stop)
            chunk = enc.slice(start, stop)
            for name, answerer in mask_users.items():
                block = _masked_measure_sums(answerer, chunk, masks, measure)
                sums.setdefault(name, np.empty(enc.n_queries))[
                    start:stop
                ] = block
    if op == "sum":
        return {name: sums[name] for name in answerers}
    counts = batch_estimates(
        table, publications, enc, artifacts, backend=backend
    )
    return {name: _divide(sums[name], counts[name]) for name in answerers}


__all__ = [
    "AGGREGATE_OPS",
    "answer_aggregate",
    "answer_aggregate_precise",
    "batch_aggregate_estimates",
    "batch_aggregate_precise",
    "check_aggregate_op",
]
