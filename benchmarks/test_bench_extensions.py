"""Benches for the §3/§7 extensions and the §2 quantification.

Reports what each extension costs (AIL) and buys (the gain it caps),
plus the section2 experiment showing cumulative-divergence models
leaving per-value exposure uncontrolled.
"""

from conftest import show
from repro.anonymity import mondrian
from repro.attacks import salary_bands
from repro.core import burel
from repro.dataset import DEFAULT_QI, make_census
from repro.experiments import section2
from repro.experiments.runner import ExperimentConfig
from repro.extensions import (
    SAGrouping,
    grouped_burel,
    measured_group_beta,
    measured_negative_beta,
    measured_proximity_beta,
    p_mondrian,
    two_sided_constraint,
)
from repro.metrics import average_information_loss, measured_beta

N = 12_000
BETA = 2.0


def _table():
    return make_census(N, seed=7, qi_names=DEFAULT_QI)


def test_bench_section2(benchmark):
    config = ExperimentConfig(n=N)
    result = benchmark.pedantic(
        section2.run, args=(config,), rounds=1, iterations=1
    )
    show(result)
    # Loosest budgets leave beta uncontrolled for every divergence.
    assert max(series[-1] for series in result.series.values()) > 5.0


def test_bench_two_sided(benchmark):
    table = _table()
    constraint = two_sided_constraint(
        table.sa_distribution(), beta=BETA, negative_beta=BETA
    )
    result = benchmark(mondrian, table, constraint)
    published = result.published
    print(
        f"\ntwo-sided: beta+={measured_beta(published):.3f} "
        f"beta-={measured_negative_beta(published):.3f} "
        f"AIL={average_information_loss(published):.3f}"
    )
    assert measured_beta(published) <= BETA + 1e-9


def test_bench_grouped(benchmark):
    table = _table()
    grouping = SAGrouping.from_lists(50, salary_bands())
    result = benchmark(grouped_burel, table, BETA, grouping)
    published = result.published
    print(
        f"\ngrouped: band beta={measured_group_beta(published, grouping):.3f} "
        f"AIL={average_information_loss(published):.3f}"
    )
    assert measured_group_beta(published, grouping) <= BETA + 1e-9


def test_bench_proximity(benchmark):
    table = _table()
    w = 5
    result = benchmark(p_mondrian, table, BETA, w)
    published = result.published
    plain = burel(table, BETA).published
    print(
        f"\nproximity: window beta {measured_proximity_beta(plain, w):.2f} "
        f"(plain BUREL) -> {measured_proximity_beta(published, w):.2f} "
        f"(PMondrian), AIL={average_information_loss(published):.3f}"
    )
    assert measured_proximity_beta(published, w) <= BETA + 1e-9
