"""Batched auditing of candidate releases — the single entry point.

``audit_publications`` is to the audit layer what
:func:`repro.query.evaluate.evaluate_workload` is to the query layer: a
custodian hands over the source table and a set of candidate
publications, and gets back one :class:`AuditReport` per candidate —
measured privacy under every model (Fig. 4, the §7 table), standard
disclosure-risk summaries, and whichever of the §2/§6.3/§7 attacks were
requested — all computed on one shared
:class:`~repro.audit.view.PublicationView` per publication, cached
across sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .._deprecation import deprecated_entry_point
from ..attacks.corruption import CompositionReport, CorruptionReport
from ..attacks.definetti import (
    DeFinettiResult,
    definetti_attack,
    random_assignment_baseline,
)
from ..attacks.naive_bayes import AttackResult
from ..attacks.skewness import GainReport
from ..dataset.table import Table
from ..metrics.privacy import PrivacyProfile
from ..metrics.risk import RiskProfile
from ..rng import coerce_rng
from .attacks import (
    composition_attack,
    corruption_attack,
    naive_bayes_attack,
    similarity_gain,
    skewness_gain,
)
from .metrics import privacy_profile, risk_profile
from .view import publication_view

#: Attack names ``audit_publications`` accepts.
AUDIT_ATTACKS = (
    "skewness",
    "similarity",
    "corruption",
    "composition",
    "naive_bayes",
    "definetti",
)


@dataclass(frozen=True)
class AuditReport:
    """Everything measured about one candidate publication.

    ``privacy`` and ``risk`` are always present; attack fields are None
    unless the attack was requested.
    """

    privacy: PrivacyProfile
    risk: RiskProfile
    skewness: GainReport | None = None
    similarity: GainReport | None = None
    corruption: CorruptionReport | None = None
    composition: CompositionReport | None = None
    naive_bayes: AttackResult | None = None
    definetti: DeFinettiResult | None = None
    definetti_baseline: AttackResult | None = None


def _audit_publications(
    table: Table,
    publications: Mapping[str, object],
    *,
    attacks: Sequence[str] = (),
    ordered_emd: bool = False,
    tolerance: float = 0.05,
    n_corrupted: int | None = None,
    rng: np.random.Generator | int = 0,
    compose_with: object | str | None = None,
    similarity_groups: Sequence[Sequence[int]] | None = None,
    definetti_iterations: int = 30,
    definetti_baseline_seed: int = 0,
    cache=None,
) -> "dict[str, AuditReport]":
    """Audit every candidate publication of ``table`` in one batch.

    This is the implementation behind both the deprecated module-level
    :func:`audit_publications` and :meth:`repro.api.Dataset.audit`
    (which supplies ``cache``).

    Args:
        table: The source microdata every publication must cover.
        publications: Name → publication (:class:`GeneralizedTable` or
            :class:`AnatomyTable`); each gets one cached view reused by
            every metric and attack.
        attacks: Subset of :data:`AUDIT_ATTACKS` to mount on top of the
            always-computed privacy and risk profiles.
        cache: Optional :class:`repro.api.ArtifactCache`; keys views by
            publication content so audits, certifications and reloads of
            the same release share one view build.
        ordered_emd: Measure closeness with the ordered ground distance
            (the §7 table's convention for ordinal SA domains).
        tolerance: ``at_risk`` threshold of the risk profile.
        n_corrupted: Corrupted-tuple count for the corruption attack
            (required when requested).
        rng: Corruption-sample randomness under the repo contract: an
            int seed or a Generator, consumed across publications in
            mapping order; ``None`` raises.
        compose_with: The second release for the composition attack — a
            name in ``publications`` or a publication object (required
            when requested).
        similarity_groups: SA value codes per semantic group (required
            when the similarity attack is requested).
        definetti_iterations: EM budget of the deFinetti attack.
        definetti_baseline_seed: Seed of its random-assignment floor.

    Returns:
        Name → :class:`AuditReport`, in ``publications`` order.
    """
    unknown = set(attacks) - set(AUDIT_ATTACKS)
    if unknown:
        raise ValueError(
            f"unknown attacks {sorted(unknown)}; choose from {AUDIT_ATTACKS}"
        )
    attacks = tuple(attacks)
    if "corruption" in attacks:
        if n_corrupted is None:
            raise ValueError("the corruption attack needs n_corrupted")
        rng = coerce_rng(rng, "audit_publications")
    if "similarity" in attacks and similarity_groups is None:
        raise ValueError("the similarity attack needs similarity_groups")
    other = None
    if "composition" in attacks:
        if isinstance(compose_with, str):
            other = publications[compose_with]
        elif compose_with is not None:
            other = compose_with
        else:
            raise ValueError("the composition attack needs compose_with")

    views = {}
    for name, published in publications.items():
        view = publication_view(published, cache=cache)
        if view.source is not table and not (
            cache is not None
            and cache.table_key(view.source) == cache.table_key(table)
        ):
            raise ValueError(
                f"publication {name!r} was built over a different table"
            )
        views[name] = view

    reports: dict[str, AuditReport] = {}
    for name, published in publications.items():
        view = views[name]
        extras: dict = {}
        if "skewness" in attacks:
            extras["skewness"] = skewness_gain(view)
        if "similarity" in attacks:
            extras["similarity"] = similarity_gain(view, similarity_groups)
        if "corruption" in attacks:
            extras["corruption"] = corruption_attack(
                view, n_corrupted, rng=rng
            )
        if "composition" in attacks:
            extras["composition"] = composition_attack(view, other)
        if "naive_bayes" in attacks:
            extras["naive_bayes"] = naive_bayes_attack(view)
        if "definetti" in attacks:
            extras["definetti"] = definetti_attack(
                published, max_iterations=definetti_iterations
            )
            extras["definetti_baseline"] = random_assignment_baseline(
                published, seed=definetti_baseline_seed
            )
        reports[name] = AuditReport(
            privacy=privacy_profile(view, ordered_emd=ordered_emd),
            risk=risk_profile(view, tolerance=tolerance),
            **extras,
        )
    return reports


audit_publications = deprecated_entry_point(
    _audit_publications,
    "repro.audit.audit_publications()",
    "repro.api.Dataset.audit()",
)
