"""Serialization of publications to interchange formats.

A data publisher needs artifacts, not Python objects.  This module
writes the three publication formats to CSV (the microdata itself, in
the exact shape a recipient would receive) and JSON (the side
information each scheme publishes along with the data):

* a **generalized** table exports one row per tuple with generalized QI
  values (interval strings / hierarchy node labels) and the verbatim SA
  value — the classic anonymized-microdata release;
* a **perturbed** table exports exact QI values with randomized SA
  values, plus a JSON sidecar holding the transition matrix ``PM`` and
  the overall SA distribution (Section 5 prescribes publishing both);
* a generic reader recovers the row streams for downstream tooling.

CSV writing uses the standard library's ``csv`` module; no dependency
beyond numpy is introduced.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from .core.perturb import PerturbedTable
from .dataset.display import describe_interval
from .dataset.published import GeneralizedTable


def generalized_to_rows(published: GeneralizedTable) -> list[dict[str, str]]:
    """One dict per tuple: generalized QI strings + leaf SA label."""
    schema = published.schema
    rows: list[dict[str, str]] = []
    for ec_id, ec in enumerate(published):
        qi_cells = {
            schema.qi[j].name: describe_interval(schema, j, lo, hi).split("=", 1)[1]
            for j, (lo, hi) in enumerate(ec.box)
        }
        for row in ec.rows:
            record = {"ec": str(ec_id), **qi_cells}
            record[schema.sensitive.name] = schema.sensitive.values[
                int(published.source.sa[row])
            ]
            rows.append(record)
    return rows


def write_generalized_csv(published: GeneralizedTable, path: str | Path) -> None:
    """Write a generalized publication as CSV (one line per tuple)."""
    rows = generalized_to_rows(published)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def write_perturbed_csv(
    published: PerturbedTable, path: str | Path, sidecar: str | Path | None = None
) -> None:
    """Write a perturbed publication as CSV plus its JSON sidecar.

    Args:
        published: The perturbation output.
        path: CSV destination (exact QIs, randomized SA).
        sidecar: JSON destination for ``PM`` and the overall SA
            distribution; defaults to ``path`` with a ``.json`` suffix.
    """
    schema = published.schema
    path = Path(path)
    with path.open("w", newline="") as handle:
        names = [attr.name for attr in schema.qi] + [schema.sensitive.name]
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(published.n_rows):
            cells = [str(int(v)) for v in published.qi[i]]
            cells.append(schema.sensitive.values[int(published.sa_perturbed[i])])
            writer.writerow(cells)
    sidecar = Path(sidecar) if sidecar is not None else path.with_suffix(".json")
    scheme = published.scheme
    payload = {
        "sensitive_attribute": schema.sensitive.name,
        "domain": [
            schema.sensitive.values[int(code)] for code in scheme.domain
        ],
        "overall_distribution": scheme.probs.tolist(),
        "transition_matrix": scheme.matrix.tolist(),
        "alphas": scheme.alphas.tolist(),
    }
    sidecar.write_text(json.dumps(payload, indent=2))


def read_perturbation_sidecar(path: str | Path) -> dict:
    """Load a perturbation sidecar; arrays come back as numpy."""
    payload = json.loads(Path(path).read_text())
    payload["overall_distribution"] = np.asarray(payload["overall_distribution"])
    payload["transition_matrix"] = np.asarray(payload["transition_matrix"])
    payload["alphas"] = np.asarray(payload["alphas"])
    return payload


def read_csv_rows(path: str | Path) -> list[dict[str, str]]:
    """Read any CSV written by this module back into dict rows."""
    with Path(path).open(newline="") as handle:
        return list(csv.DictReader(handle))


def load_csv_table(
    path: str | Path,
    qi_names: list[str],
    sensitive_name: str,
    numerical: list[str] | None = None,
):
    """Load raw microdata from a CSV file into a :class:`Table`.

    Args:
        path: CSV with a header row.
        qi_names: Columns forming the quasi-identifier, in order.
        sensitive_name: The sensitive column.
        numerical: QI columns to parse as integers; the rest become
            categorical attributes under flat (height-1) hierarchies
            built from their observed values, sorted for determinism.

    Returns:
        A :class:`repro.dataset.table.Table`.  Intended for the CLI and
        for users bringing their own data; hierarchical categorical
        attributes should be constructed programmatically instead.
    """
    from .dataset.schema import Attribute, Schema, SensitiveAttribute
    from .dataset.table import Table
    from .hierarchy import Hierarchy

    numerical = set(numerical or [])
    rows = read_csv_rows(path)
    if not rows:
        raise ValueError(f"{path}: empty file")
    missing = [c for c in qi_names + [sensitive_name] if c not in rows[0]]
    if missing:
        raise ValueError(f"{path}: missing columns {missing}")

    attributes = []
    columns: list[np.ndarray] = []
    for name in qi_names:
        raw = [row[name] for row in rows]
        if name in numerical:
            values = np.array([int(v) for v in raw], dtype=np.int64)
            attributes.append(
                Attribute.numerical(name, int(values.min()), int(values.max()))
            )
            columns.append(values)
        else:
            labels = sorted(set(raw))
            hierarchy = Hierarchy.flat(labels, root_label=f"any-{name}")
            rank = {label: hierarchy.rank_of(label) for label in labels}
            attributes.append(Attribute.categorical(name, hierarchy))
            columns.append(np.array([rank[v] for v in raw], dtype=np.int64))

    sa_labels = tuple(sorted(set(row[sensitive_name] for row in rows)))
    sensitive = SensitiveAttribute(sensitive_name, sa_labels)
    sa = np.array(
        [sensitive.code_of(row[sensitive_name]) for row in rows],
        dtype=np.int64,
    )
    schema = Schema(attributes, sensitive)
    return Table(schema, np.column_stack(columns), sa)
