"""The repo-wide randomness contract, in one place.

Every randomized surface (workload generation, the corruption attack,
the audit entry point) accepts an int seed or a
``numpy.random.Generator`` and rejects ``None``: a caller must not be
able to believe it asked for fresh randomness while silently sharing
the historical seed 0.  Deterministic-by-default surfaces document
their explicit default seed instead.
"""

from __future__ import annotations

import numpy as np


def coerce_rng(
    rng: np.random.Generator | int | None, caller: str
) -> np.random.Generator:
    """Resolve ``rng`` under the uniform contract, naming the caller in
    the error so the fix is obvious at the call site."""
    if rng is None:
        raise TypeError(
            f"{caller} requires an int seed or a numpy Generator; "
            "rng=None is ambiguous (the historical behaviour silently "
            "seeded 0 — pass rng=0 to keep it)"
        )
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_seeds(seed: int, n: int) -> "list[np.random.SeedSequence]":
    """``n`` independent child seed sequences of one root seed.

    This is the repo's **per-shard rng contract**: a sharded computation
    with root seed ``s`` gives shard ``i`` the generator built from
    ``SeedSequence(s).spawn(n)[i]``.  Child streams are statistically
    independent (numpy's spawn protocol), and — critically for the
    parallel layer — shard ``i``'s stream depends only on ``(s, n, i)``,
    never on which worker process runs the shard or in what order
    shards are scheduled.  ``workers=1`` and ``workers=8`` therefore
    consume byte-identical randomness per shard.

    Seed sequences (not generators) are returned because they pickle
    cheaply and each worker should construct its own
    ``np.random.default_rng(seed_sequence)`` locally.
    """
    if n < 1:
        raise ValueError("need at least one child seed")
    return np.random.SeedSequence(seed).spawn(n)


def spawn_generators(seed: int, n: int) -> "list[np.random.Generator]":
    """Generators over :func:`spawn_seeds` (the in-process convenience)."""
    return [np.random.default_rng(ss) for ss in spawn_seeds(seed, n)]
