"""Tests for the batched privacy-audit engine (``repro.audit``).

The contract under test: every batched metric and attack is
bit/float-identical to the scalar reference it reimplements, for every
publication family the paper evaluates — plus regression tests for the
uncovered-row and rng bug classes the audit PR fixed in the scalar
layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import attacks as scalar_attacks
from repro import audit
from repro import metrics as scalar_metrics
from repro.anonymity import anatomize, mondrian, sabre, t_closeness
from repro.attacks import (
    composition_attack,
    corruption_attack,
    definetti_attack,
    random_assignment_baseline,
    salary_bands,
)
from repro.core import burel
from repro.dataset import publish
from repro.dataset.published import make_equivalence_class


@pytest.fixture(scope="module")
def publications(census_small):
    """One publication per family of the paper's evaluation."""
    return {
        "burel": burel(census_small, 3.0).published,
        "sabre": sabre(census_small, 0.15, ordered=True).published,
        "mondrian": mondrian(
            census_small, t_closeness(census_small.sa_distribution(), 0.15)
        ).published,
        "anatomy": anatomize(
            census_small, 4, rng=np.random.default_rng(1)
        ),
    }


def _scalar_form(table, published):
    """The scalar references take a GeneralizedTable; Anatomy groups are
    re-published as equivalent ECs so both paths see the same groups."""
    if isinstance(published, audit.PublicationView):  # pragma: no cover
        raise TypeError
    if hasattr(published, "groups"):
        return publish(table, [g.rows for g in published.groups])
    return published


class _PartialPublication:
    """A duck-typed publication whose ECs miss some source rows —
    the uncovered-row bug class (cannot be built via GeneralizedTable,
    whose constructor validates the partition)."""

    def __init__(self, source, row_groups):
        self.source = source
        self.schema = source.schema
        self.classes = tuple(
            make_equivalence_class(source, rows) for rows in row_groups
        )

    @property
    def n_rows(self):
        return self.source.n_rows

    def __iter__(self):
        return iter(self.classes)

    def __len__(self):
        return len(self.classes)


@pytest.fixture()
def partial_publication(patients):
    """Covers rows 0..3 of the 6-row patients table; 4 and 5 uncovered."""
    return _PartialPublication(
        patients, [np.array([0, 1]), np.array([2, 3])]
    )


# ----------------------------------------------------------------------
# The view
# ----------------------------------------------------------------------


class TestPublicationView:
    def test_counts_match_per_class_histograms(self, publications):
        pub = publications["burel"]
        view = audit.publication_view(pub)
        assert view.n_groups == len(pub)
        for g, ec in enumerate(pub):
            assert np.array_equal(view.counts[g], ec.sa_counts)
            assert view.sizes[g] == ec.size
            assert np.all(view.class_of[ec.rows] == g)

    def test_view_is_cached_per_publication(self, publications):
        pub = publications["sabre"]
        assert audit.publication_view(pub) is audit.publication_view(pub)
        audit.clear_view_cache()
        assert audit.publication_view(pub) is audit.publication_view(pub)

    def test_anatomy_groups_supported(self, publications):
        view = audit.publication_view(publications["anatomy"])
        assert view.boxes is None
        assert view.sizes.sum() == view.source.n_rows

    def test_uncovered_rows_rejected(self, partial_publication):
        with pytest.raises(ValueError, match="uncovered"):
            audit.PublicationView(partial_publication)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            audit.PublicationView(object())


# ----------------------------------------------------------------------
# Batch-vs-scalar equality: privacy and risk metrics
# ----------------------------------------------------------------------


FAMILIES = ("burel", "sabre", "mondrian", "anatomy")


@pytest.mark.parametrize("family", FAMILIES)
class TestMetricEquality:
    def test_privacy_metrics_identical(
        self, census_small, publications, family
    ):
        pub = publications[family]
        ref = _scalar_form(census_small, pub)
        assert audit.measured_beta(pub) == scalar_metrics.measured_beta(ref)
        assert audit.average_beta(pub) == scalar_metrics.average_beta(ref)
        assert audit.measured_l(pub) == scalar_metrics.measured_l(ref)
        assert audit.average_l(pub) == scalar_metrics.average_l(ref)
        assert audit.measured_delta(pub) == scalar_metrics.measured_delta(ref)
        for ordered in (False, True):
            assert audit.measured_t(pub, ordered) == scalar_metrics.measured_t(
                ref, ordered
            )
            assert audit.average_t(pub, ordered) == scalar_metrics.average_t(
                ref, ordered
            )

    def test_privacy_profile_identical(
        self, census_small, publications, family
    ):
        pub = publications[family]
        ref = _scalar_form(census_small, pub)
        for ordered in (False, True):
            assert audit.privacy_profile(
                pub, ordered_emd=ordered
            ) == scalar_metrics.privacy_profile(ref, ordered_emd=ordered)

    def test_risk_vectors_identical(self, census_small, publications, family):
        pub = publications[family]
        ref = _scalar_form(census_small, pub)
        assert np.array_equal(
            audit.reidentification_risks(pub),
            scalar_metrics.reidentification_risks(ref),
        )
        assert np.array_equal(
            audit.attribute_disclosure_risks(pub),
            scalar_metrics.attribute_disclosure_risks(ref),
        )
        assert audit.risk_profile(pub) == scalar_metrics.risk_profile(ref)


# ----------------------------------------------------------------------
# Batch-vs-scalar equality: attacks
# ----------------------------------------------------------------------


@pytest.mark.parametrize("family", FAMILIES)
class TestAttackEquality:
    def test_skewness_identical(self, census_small, publications, family):
        pub = publications[family]
        ref = _scalar_form(census_small, pub)
        assert audit.skewness_gain(pub) == scalar_attacks.skewness_gain(ref)

    def test_similarity_identical(self, census_small, publications, family):
        pub = publications[family]
        ref = _scalar_form(census_small, pub)
        bands = salary_bands()
        assert audit.similarity_gain(pub, bands) == (
            scalar_attacks.similarity_gain(ref, bands)
        )

    def test_corruption_identical(self, census_small, publications, family):
        pub = publications[family]
        ref = _scalar_form(census_small, pub)
        for n_corrupted in (0, 500, census_small.n_rows):
            assert audit.corruption_attack(
                pub, n_corrupted, rng=7
            ) == corruption_attack(ref, n_corrupted, rng=7)

    def test_composition_identical(self, census_small, publications, family):
        pub = publications[family]
        other = publications["burel"]
        batch = audit.composition_attack(pub, other)
        scalar = composition_attack(
            _scalar_form(census_small, pub),
            _scalar_form(census_small, other),
        )
        assert batch == scalar


def test_naive_bayes_identical(census_small, publications):
    for family in ("burel", "sabre", "mondrian"):
        pub = publications[family]
        batch = audit.naive_bayes_attack(pub)
        scalar = scalar_attacks.naive_bayes_attack(pub)
        assert batch.accuracy == scalar.accuracy
        assert batch.majority_baseline == scalar.majority_baseline
        assert np.array_equal(batch.predictions, scalar.predictions)


def test_naive_bayes_needs_boxes(publications):
    with pytest.raises(TypeError, match="generalized"):
        audit.naive_bayes_attack(publications["anatomy"])


def test_similarity_handles_uniform_toy(patients):
    gt = publish(patients, [np.array([0, 1, 2]), np.array([3, 4, 5])])
    groups = scalar_attacks.hierarchy_groups(gt, depth=1)
    assert audit.similarity_gain(gt, groups) == (
        scalar_attacks.similarity_gain(gt, groups)
    )
    assert audit.skewness_gain(gt) == scalar_attacks.skewness_gain(gt)


def test_no_gain_single_class(patients):
    # One EC covering the table: q == p, so the report is the no-gain
    # sentinel on both paths.
    gt = publish(patients, [np.arange(6)])
    report = audit.skewness_gain(gt)
    assert report == scalar_attacks.skewness_gain(gt)
    assert report.max_gain == 1.0
    assert report.class_index == -1


# ----------------------------------------------------------------------
# The entry point
# ----------------------------------------------------------------------


class TestAuditPublications:
    def test_reports_match_direct_calls(self, census_small, publications):
        reports = audit.audit_publications(
            census_small,
            publications,
            attacks=("skewness", "composition"),
            ordered_emd=True,
            compose_with="burel",
        )
        assert list(reports) == list(publications)
        for name, pub in publications.items():
            report = reports[name]
            assert report.privacy == audit.privacy_profile(
                pub, ordered_emd=True
            )
            assert report.risk == audit.risk_profile(pub)
            assert report.skewness == audit.skewness_gain(pub)
            assert report.composition == audit.composition_attack(
                pub, publications["burel"]
            )
            assert report.corruption is None
            assert report.naive_bayes is None

    def test_corruption_and_nb_through_entry_point(
        self, census_small, publications
    ):
        reports = audit.audit_publications(
            census_small,
            {"burel": publications["burel"]},
            attacks=("corruption", "naive_bayes"),
            n_corrupted=300,
            rng=11,
        )
        report = reports["burel"]
        assert report.corruption == audit.corruption_attack(
            publications["burel"], 300, rng=11
        )
        assert report.naive_bayes.accuracy == audit.naive_bayes_attack(
            publications["burel"]
        ).accuracy

    def test_definetti_through_entry_point(self, census_small, publications):
        reports = audit.audit_publications(
            census_small,
            {"anatomy": publications["anatomy"]},
            attacks=("definetti",),
            definetti_iterations=3,
        )
        report = reports["anatomy"]
        direct = definetti_attack(publications["anatomy"], max_iterations=3)
        floor = random_assignment_baseline(publications["anatomy"])
        assert report.definetti.accuracy == direct.accuracy
        assert report.definetti_baseline.accuracy == floor.accuracy

    def test_wrong_table_rejected(self, census_small, census_full_qi):
        pub = burel(census_full_qi, 2.0).published
        with pytest.raises(ValueError, match="different table"):
            audit.audit_publications(census_small, {"pub": pub})

    def test_unknown_attack_rejected(self, census_small, publications):
        with pytest.raises(ValueError, match="unknown attacks"):
            audit.audit_publications(
                census_small, publications, attacks=("mitm",)
            )

    def test_missing_attack_inputs_rejected(self, census_small, publications):
        subset = {"burel": publications["burel"]}
        with pytest.raises(ValueError, match="n_corrupted"):
            audit.audit_publications(
                census_small, subset, attacks=("corruption",)
            )
        with pytest.raises(ValueError, match="compose_with"):
            audit.audit_publications(
                census_small, subset, attacks=("composition",)
            )
        with pytest.raises(ValueError, match="similarity_groups"):
            audit.audit_publications(
                census_small, subset, attacks=("similarity",)
            )


# ----------------------------------------------------------------------
# Regression tests: the uncovered-row and rng bug classes
# ----------------------------------------------------------------------


class TestUncoveredRowRegressions:
    def test_composition_rejects_partial_coverage(
        self, patients, partial_publication
    ):
        # Pre-fix, rows 4 and 5 carried np.empty garbage class ids and
        # silently corrupted the pair posteriors.
        full = publish(patients, [np.arange(3), np.arange(3, 6)])
        with pytest.raises(ValueError, match="do not cover"):
            composition_attack(partial_publication, full)
        with pytest.raises(ValueError, match="do not cover"):
            composition_attack(full, partial_publication)

    def test_risk_vectors_reject_partial_coverage(self, partial_publication):
        with pytest.raises(ValueError, match="do not cover"):
            scalar_metrics.reidentification_risks(partial_publication)
        with pytest.raises(ValueError, match="do not cover"):
            scalar_metrics.attribute_disclosure_risks(partial_publication)

    def test_definetti_rejects_partial_coverage(self, patients):
        # A GeneralizedTable cannot be built with missing rows, so drive
        # the validation through a structurally valid object whose
        # classes were truncated after construction.
        full = publish(patients, [np.arange(3), np.arange(3, 6)])
        full.classes = full.classes[:1]
        with pytest.raises(ValueError, match="exactly once"):
            definetti_attack(full)
        with pytest.raises(ValueError, match="exactly once"):
            random_assignment_baseline(full)


class TestCorruptionRngContract:
    def test_rng_none_rejected(self, publications):
        pub = publications["burel"]
        with pytest.raises(TypeError, match="rng=None is ambiguous"):
            corruption_attack(pub, 10, rng=None)
        with pytest.raises(TypeError, match="rng=None is ambiguous"):
            audit.corruption_attack(pub, 10, rng=None)

    def test_default_is_documented_seed_zero(self, publications):
        pub = publications["burel"]
        default = corruption_attack(pub, 100)
        assert default == corruption_attack(pub, 100, rng=0)
        assert default == corruption_attack(
            pub, 100, rng=np.random.default_rng(0)
        )
        assert default == audit.corruption_attack(pub, 100)

    def test_generator_state_is_consumed(self, publications):
        # One generator, two draws: different samples, as an explicit
        # Generator implies.
        pub = publications["burel"]
        rng = np.random.default_rng(3)
        first = audit.corruption_attack(pub, 2_000, rng=rng)
        second = audit.corruption_attack(pub, 2_000, rng=rng)
        scalar_rng = np.random.default_rng(3)
        assert first == corruption_attack(pub, 2_000, rng=scalar_rng)
        assert second == corruption_attack(pub, 2_000, rng=scalar_rng)
