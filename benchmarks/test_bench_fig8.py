"""Bench: Figure 8 — COUNT-query error of the generalization schemes.

Shapes asserted: error falls as β relaxes (8b) and as θ grows (8d);
rises with QI size (8c); BUREL answers at least as well as DMondrian
throughout (the paper reports BUREL best overall).
"""

import numpy as np

from conftest import show
from repro.experiments import fig8


def test_fig8a(benchmark, bench_config_full_qi):
    result = benchmark.pedantic(
        fig8.run_fig8a, args=(bench_config_full_qi,), rounds=1, iterations=1
    )
    show(result)
    assert all(len(v) == 5 for v in result.series.values())


def test_fig8b(benchmark, bench_config_full_qi):
    result = benchmark.pedantic(
        fig8.run_fig8b, args=(bench_config_full_qi,), rounds=1, iterations=1
    )
    show(result)
    burel = result.series["BUREL"]
    assert burel[-1] < burel[0]
    assert np.mean(result.series["DMondrian"]) >= np.mean(burel) - 0.02


def test_fig8c(benchmark, bench_config_full_qi):
    result = benchmark.pedantic(
        fig8.run_fig8c, args=(bench_config_full_qi,), rounds=1, iterations=1
    )
    show(result)
    burel = result.series["BUREL"]
    assert burel[-1] > burel[0]


def test_fig8d(benchmark, bench_config_full_qi):
    result = benchmark.pedantic(
        fig8.run_fig8d, args=(bench_config_full_qi,), rounds=1, iterations=1
    )
    show(result)
    burel = result.series["BUREL"]
    assert burel[-1] < burel[0]
