"""Tests for the Incognito-style full-domain generalization substrate."""

import numpy as np
import pytest

from repro.anonymity import (
    beta_likeness,
    categorical_ladder,
    default_ladders,
    incognito,
    lattice_search,
    numerical_ladder,
    t_closeness,
)
from repro.dataset import make_census
from repro.metrics import average_information_loss, measured_beta, measured_t


@pytest.fixture(scope="module")
def census_tiny():
    return make_census(3_000, seed=7, qi_names=("Age", "Gender", "Education"))


class TestLadders:
    def test_numerical_ladder_levels(self):
        ladder = numerical_ladder(0, 9)
        # widths 1, 2, 4, 8, 16 -> 5 levels (the top one is one bin).
        assert ladder.n_levels == 5
        assert len(ladder.intervals[0]) == 10
        assert len(ladder.intervals[-1]) == 1
        assert ladder.intervals[-1][0] == (0, 9)

    def test_numerical_ladder_identity_level(self):
        ladder = numerical_ladder(5, 14)
        assert ladder.group_of[0].tolist() == list(range(10))
        assert ladder.intervals[0][3] == (8, 8)

    def test_numerical_ladder_bins_partition(self):
        ladder = numerical_ladder(0, 20)
        for level in range(ladder.n_levels):
            covered = []
            for lo, hi in ladder.intervals[level]:
                covered.extend(range(lo, hi + 1))
            assert covered == list(range(21))

    def test_categorical_ladder_from_fig1(self, patients):
        hierarchy = patients.schema.sensitive.hierarchy
        ladder = categorical_ladder(hierarchy)
        assert ladder.n_levels == 3  # leaves, subtrees, root
        assert len(ladder.intervals[0]) == 6
        assert len(ladder.intervals[1]) == 2
        assert len(ladder.intervals[2]) == 1

    def test_default_ladders_match_schema(self, census_tiny):
        ladders = default_ladders(census_tiny.schema)
        assert len(ladders) == 3
        # Gender has hierarchy height 1 -> 2 levels.
        assert ladders[1].n_levels == 2


class TestLatticeSearch:
    def test_incognito_k_anonymity_guarantee(self, census_tiny):
        result = incognito(census_tiny, 20)
        assert min(ec.size for ec in result.published) >= 20

    def test_all_classes_share_levels(self, census_tiny):
        """Full-domain recoding: every EC's box comes from the same
        per-attribute level grid."""
        result = incognito(census_tiny, 20)
        widths = {
            (hi - lo + 1)
            for ec in result.published
            for (lo, hi) in [ec.box[0]]
        }
        # Age bins at one level all share one width (except the last
        # clamped bin).
        assert len(widths) <= 2

    def test_pruning_skips_nodes(self, census_tiny):
        result = incognito(census_tiny, 20)
        assert result.nodes_evaluated < result.lattice_size

    def test_minimal_vectors_are_antichain(self, census_tiny):
        result = incognito(census_tiny, 20)
        for a in result.minimal_vectors:
            for b in result.minimal_vectors:
                if a != b:
                    assert not all(x <= y for x, y in zip(a, b))

    def test_beta_likeness_guarantee(self, census_tiny):
        constraint = beta_likeness(census_tiny.sa_distribution(), 4.0)
        result = lattice_search(census_tiny, constraint)
        assert measured_beta(result.published) <= 4.0 + 1e-9

    def test_t_closeness_guarantee(self, census_tiny):
        constraint = t_closeness(census_tiny.sa_distribution(), 0.3)
        result = lattice_search(census_tiny, constraint)
        assert measured_t(result.published) <= 0.3 + 1e-9

    def test_rows_partitioned(self, census_tiny):
        result = incognito(census_tiny, 20)
        rows = np.concatenate([ec.rows for ec in result.published])
        assert len(np.unique(rows)) == census_tiny.n_rows

    def test_full_domain_lossier_than_mondrian(self, census_tiny):
        """The §2 claim: full-domain schemes adapted to distribution
        models lose more information than specialized algorithms."""
        from repro.core import burel

        constraint = beta_likeness(census_tiny.sa_distribution(), 4.0)
        fd = lattice_search(census_tiny, constraint)
        b = burel(census_tiny, 4.0)
        assert average_information_loss(
            fd.published
        ) >= average_information_loss(b.published) - 0.05

    def test_impossible_constraint_raises(self, census_tiny):
        from repro.anonymity import k_anonymity

        with pytest.raises(ValueError, match="no full-domain"):
            lattice_search(
                census_tiny, k_anonymity(census_tiny.n_rows + 1)
            )
