"""The repro.api session facade in five steps.

One ``Dataset`` wraps the microdata together with a cross-layer artifact
cache, and the paper's whole custodian chain — anonymize, audit,
certify, publish, evaluate, serve — runs fluently on top of it:

1. wrap a CENSUS sample in a ``Dataset``;
2. sweep BUREL over several β values in one shared-preprocessing batch;
3. audit each release and publish it to a certification-gated store;
4. evaluate a COUNT workload over every release (one precise pass);
5. reload a stored publication — content addressing means it hits the
   same cached artifacts — and serve queries from it.

Run:  python examples/api_quickstart.py [--tuples N]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.api import Dataset
from repro.service import PublicationStore, QueryService


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tuples", type=int, default=20_000)
    parser.add_argument("--queries", type=int, default=500)
    args = parser.parse_args()

    # 1. One session object: table + shared artifact cache.  The
    #    ``with`` block releases any worker pools even on error paths.
    with Dataset.from_census(args.tuples, seed=7) as ds:
        print(f"dataset: {ds.n_rows} tuples, {ds.schema.n_qi} QI attributes")

        # 2. A declarative sweep — one batch, shared Hilbert encoding.
        betas = (1.0, 2.0, 4.0)
        runs = ds.sweep([("burel", {"beta": beta}) for beta in betas])

        workload = ds.workload(args.queries, lam=3, theta=0.1)
        with tempfile.TemporaryDirectory() as root:
            store = PublicationStore(root, cache=ds.cache)
            print(f"\n{'beta':>6}  {'real beta':>10}  {'t':>8}  "
                  f"{'median err':>10}  id")
            for beta, run in zip(betas, runs):
                # 3. Audit, then publish — admission re-checks the declared
                #    contract on the same cached view the audit built.
                report = run.audit()
                record = run.publish(store, requirement={"beta": beta})
                # 4. Workload utility via the batched query engine; the
                #    precise answers are computed once for all three runs.
                profile = run.evaluate(workload)
                print(f"{beta:>6}  {report.privacy.beta:>10.4f}  "
                      f"{report.privacy.t:>8.4f}  {profile.median:>10.2%}  "
                      f"{record.pub_id[:12]}")

            # 5. Serve the β=2 release back out of the store.  The reload
            #    is content-addressed, so it reuses the session's artifacts.
            target = runs[1]
            record = store.put(target.published, requirement={"beta": 2.0})
            with QueryService(store, artifact_cache=ds.cache) as service:
                estimates = service.answer(record.pub_id, workload[:5])
            print(f"\nserved estimates (beta=2): "
                  + ", ".join(f"{e:.1f}" for e in estimates))

        stats = ds.cache.stats()
        print(f"\nartifact cache: {stats['entries']} artifacts, "
              f"{stats['nbytes'] / 1e6:.1f} MB, "
              f"{stats['hits']} hits / {stats['misses']} misses")


if __name__ == "__main__":
    main()
