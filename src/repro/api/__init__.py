"""repro.api — the unified session facade over the layered engines.

One import gives the paper's whole chain with one shared artifact
cache::

    from repro.api import Dataset

    ds = Dataset.from_census(30_000, seed=7)
    run = ds.anonymize("burel", beta=2.0)
    run.audit()                                   # batched audit layer
    run.certify({"beta": 2.0})                    # store's contract gate
    record = run.publish(store, requirement={"beta": 2.0})
    run.evaluate(ds.workload(2_000))              # batched query layer

    runs = ds.sweep([("burel", {"beta": b}) for b in (1.0, 2.0, 4.0)])

Datasets are also **versioned and mutable**: a sharded run becomes a
tracked baseline, ``ds.append(rows)`` routes new rows to shards and
evicts only the touched shards' cached artifacts, and ``ds.refresh()``
re-anonymizes incrementally — byte-identical to a cold run over the
concatenated table, at the cost of the dirty shards alone::

    with Dataset(table) as ds:                    # closes pools on exit
        base = ds.anonymize("burel", beta=2.0, rng=17, shards=16)
        rec0 = base.publish(store, requirement={"beta": 2.0}, name="census")
        ds.append(new_rows)
        run = ds.refresh()                        # reuses clean shards
        rec1 = run.publish(store, requirement={"beta": 2.0},
                           name="census", parent=rec0)
        store.versions("census")                  # lineage, parent-first

The :class:`ArtifactCache` replaces the layers' scattered private memos
(engine ``PreparedTable`` fields, weak-keyed mask engines, id-keyed
publication views) with one content-digest-keyed store offering size
accounting and explicit invalidation; see :mod:`repro.api.cache`.
"""

from .cache import ARTIFACT_KINDS, ArtifactCache, estimate_nbytes
from .dataset import AnonymizationRun, Dataset
from .versioned import RefreshRun, VersionState, lineage_token

__all__ = [
    "ARTIFACT_KINDS",
    "AnonymizationRun",
    "ArtifactCache",
    "Dataset",
    "RefreshRun",
    "VersionState",
    "estimate_nbytes",
    "lineage_token",
]
