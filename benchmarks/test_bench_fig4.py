"""Bench: Figure 4 — β-likeness vs t-closeness face-to-face.

Regenerates the three panels and asserts the paper's headline shape:
at matched closeness or matched information loss, the t-closeness
schemes' measured β exceeds BUREL's.
"""

import numpy as np

from conftest import show
from repro.experiments import fig4


def test_fig4a(benchmark, bench_config):
    result = benchmark.pedantic(
        fig4.run_fig4a, args=(bench_config,), rounds=1, iterations=1
    )
    show(result)
    burel = np.array(result.series["BUREL"])
    t_mon = np.array(result.series["tMondrian"])
    # BUREL honours its β budget everywhere; the competitor's worst row
    # must overshoot BUREL's worst row (the paper's log-scale gap).
    assert (burel <= np.array(result.x_values) + 1e-9).all()
    assert t_mon.max() > burel.max()


def test_fig4b(benchmark, bench_config):
    result = benchmark.pedantic(
        fig4.run_fig4b, args=(bench_config,), rounds=1, iterations=1
    )
    show(result)
    burel = np.array(result.series["BUREL"])
    t_mon = np.array(result.series["tMondrian"])
    sabre_ = np.array(result.series["SABRE"])
    # At the loosest (most separating) settings the ordering holds.
    assert t_mon[-1] > burel[-1]
    assert sabre_[-1] > burel[-1] * 0.5


def test_fig4c(benchmark, bench_config):
    result = benchmark.pedantic(
        fig4.run_fig4c, args=(bench_config,), rounds=1, iterations=1
    )
    show(result)
    burel = np.array(result.series["BUREL"])
    t_mon = np.array(result.series["tMondrian"])
    assert t_mon.max() > burel.max()
