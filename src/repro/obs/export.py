"""Exporters: JSON snapshots, Chrome trace events, terminal reports.

Three consumers of one telemetry session:

* :func:`chrome_trace` — ``chrome://tracing`` / Perfetto "trace event"
  format: one complete (``"ph": "X"``) event per finished span, with
  microsecond timestamps rebased to the earliest span, real pids/tids
  preserved so pool workers render as separate lanes.
* :func:`write_trace` / :func:`load_trace` — the ``--trace out.json``
  file: a JSON object with ``traceEvents`` (what Chrome reads; extra
  top-level keys are permitted by the format and ignored by viewers)
  plus the span records and the metrics snapshot, so one file feeds
  both the tracing UI and ``repro stats``.
* :func:`span_tree` / :func:`format_report` — the programmatic tree and
  the human summary the CLI prints.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = [
    "chrome_trace",
    "span_tree",
    "write_trace",
    "load_trace",
    "format_report",
    "format_stage_seconds",
]


def _records(spans: Iterable) -> "list[dict]":
    return [
        span if isinstance(span, dict) else span.to_dict() for span in spans
    ]


def chrome_trace(spans: Iterable) -> "list[dict]":
    """Finished spans as Chrome trace-event dicts (``ph: "X"``)."""
    records = [r for r in _records(spans) if r.get("end") is not None]
    if not records:
        return []
    epoch = min(r["start"] for r in records)
    return [
        {
            "name": r["name"],
            "ph": "X",
            "ts": round((r["start"] - epoch) * 1e6, 3),
            "dur": round((r["end"] - r["start"]) * 1e6, 3),
            "pid": r.get("pid", 0),
            "tid": r.get("tid", 0),
            "args": dict(r.get("attributes", ())),
        }
        for r in records
    ]


def span_tree(spans: Iterable) -> "list[dict]":
    """The spans as a parent → children forest, in span-id order.

    Each node is ``{"name", "span_id", "duration", "attributes",
    "children": [...]}`` — the shape ``repro stats`` prints and the
    bench's round-trip check compares against the programmatic
    snapshot.
    """
    records = _records(spans)
    nodes = {
        r["span_id"]: {
            "name": r["name"],
            "span_id": r["span_id"],
            "duration": (
                round(r["end"] - r["start"], 9)
                if r.get("end") is not None
                else None
            ),
            "attributes": dict(r.get("attributes", ())),
            "children": [],
        }
        for r in records
    }
    roots: list[dict] = []
    for r in records:
        node = nodes[r["span_id"]]
        parent = nodes.get(r.get("parent_id"))
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def write_trace(path, telemetry) -> dict:
    """Write a combined trace file; returns the written payload.

    The file is valid Chrome trace JSON (object form with
    ``traceEvents``) and also carries the raw span records and the
    metrics snapshot for ``repro stats`` / programmatic reloads.
    """
    spans = telemetry.tracer.export()
    payload = {
        "traceEvents": chrome_trace(spans),
        "spans": spans,
        "metrics": telemetry.metrics.snapshot(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    return payload


def load_trace(path) -> dict:
    """Read a :func:`write_trace` file back."""
    with open(path) as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# Terminal reports
# ----------------------------------------------------------------------


def format_stage_seconds(stage_seconds: "dict[str, float]") -> str:
    """The one-line ``name=0.123s`` stage summary every subcommand
    prints."""
    return "  ".join(
        f"{name}={seconds:.3f}s" for name, seconds in stage_seconds.items()
    )


def _format_node(node: dict, depth: int, lines: "list[str]") -> None:
    duration = node["duration"]
    timing = f"{duration:.3f}s" if duration is not None else "open"
    attrs = ", ".join(
        f"{k}={v}" for k, v in node["attributes"].items()
        if not isinstance(v, (dict, list))
    )
    suffix = f"  [{attrs}]" if attrs else ""
    lines.append(f"{'  ' * depth}{node['name']}  {timing}{suffix}")
    for child in node["children"]:
        _format_node(child, depth + 1, lines)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_report(
    snapshot: dict, *, max_spans: int = 200
) -> str:
    """Human-readable report of a telemetry snapshot / trace file.

    Accepts either :meth:`repro.obs.Telemetry.snapshot` output or a
    :func:`load_trace` payload (they share the ``spans`` / ``metrics``
    keys).
    """
    lines: list[str] = []
    spans = snapshot.get("spans", [])
    if spans:
        lines.append(f"spans ({len(spans)}):")
        shown = 0
        for root in span_tree(spans):
            before = len(lines)
            _format_node(root, 1, lines)
            shown += len(lines) - before
            if shown >= max_spans:
                lines.append(f"  ... ({len(spans) - shown} more spans)")
                break
    metrics = snapshot.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name} = {value}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in gauges.items():
            lines.append(f"  {name} = {_format_value(value)}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, h in histograms.items():
            if h["count"]:
                lines.append(
                    f"  {name}: n={h['count']} mean={h['mean']:.6g} "
                    f"p50={h['p50']:.6g} p99={h['p99']:.6g} "
                    f"max={h['max']:.6g}"
                )
            else:
                lines.append(f"  {name}: n=0")
    if not lines:
        return "(empty telemetry snapshot)"
    return "\n".join(lines)
