"""Skewness and similarity attacks (Section 2's motivating analysis).

These are not algorithms but *measurements*: given a publication, how
much can an adversary's confidence in a sensitive value (or a semantic
group of values) exceed the prior?  ℓ-diversity caps neither — the
paper's HIV example shows a 100-fold confidence jump in a perfectly
10-diverse table — while β-likeness caps both by construction (per value
directly; per semantic group because group frequency is a sum of value
frequencies, each individually bounded).

* ``skewness_gain`` — the largest multiplicative confidence jump
  ``q_i / p_i`` over all ECs and SA values (the §2 skewness attack
  quantity; note measured β = skewness_gain − 1 on the gaining side).
* ``similarity_gain`` — the same ratio at the granularity of semantic
  groups, e.g. the Fig. 1 disease categories or salary bands.

The per-EC argmax loops here are the *scalar references*; the batched
audit engine (:mod:`repro.audit.attacks`) evaluates the same ratios as
one matrix pass over the publication view with identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dataset.published import GeneralizedTable

_EPS = 1e-12


@dataclass(frozen=True)
class GainReport:
    """Worst-case multiplicative confidence gain across a publication.

    Attributes:
        max_gain: Largest ``q/p`` ratio observed (1.0 = no gain).
        value_index: SA value (or group) index attaining it.
        class_index: EC index attaining it.
    """

    max_gain: float
    value_index: int
    class_index: int


def skewness_gain(published: GeneralizedTable) -> GainReport:
    """Worst-case per-value confidence jump ``max q_i / p_i``."""
    p = published.global_distribution()
    best = GainReport(1.0, -1, -1)
    for g, ec in enumerate(published):
        q = ec.sa_distribution()
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(p > _EPS, q / np.where(p > _EPS, p, 1.0), np.inf)
        ratio = np.where(q > _EPS, ratio, 0.0)
        i = int(np.argmax(ratio))
        if ratio[i] > best.max_gain:
            best = GainReport(float(ratio[i]), i, g)
    return best


def similarity_gain(
    published: GeneralizedTable, groups: Sequence[Sequence[int]]
) -> GainReport:
    """Worst-case confidence jump at semantic-group granularity.

    Args:
        published: The publication to audit.
        groups: SA value codes per semantic group (e.g. all nervous
            diseases).  Groups need not cover the domain or be disjoint.
    """
    p = published.global_distribution()
    group_p = np.array([p[list(g)].sum() for g in groups])
    best = GainReport(1.0, -1, -1)
    for g, ec in enumerate(published):
        # Sum the integer counts, then divide once: the group frequency
        # is exact regardless of summation order (a float sum of
        # per-value frequencies is not), which keeps the batched audit
        # kernel bit-identical by construction.
        group_q = np.array(
            [ec.sa_counts[list(gr)].sum() for gr in groups]
        ) / ec.size
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(
                group_p > _EPS, group_q / np.where(group_p > _EPS, group_p, 1.0),
                np.inf,
            )
        ratio = np.where(group_q > _EPS, ratio, 0.0)
        i = int(np.argmax(ratio))
        if ratio[i] > best.max_gain:
            best = GainReport(float(ratio[i]), i, g)
    return best


def hierarchy_groups(published: GeneralizedTable, depth: int = 1) -> list[list[int]]:
    """Semantic groups from the SA hierarchy's nodes at ``depth``.

    Convenience for similarity analysis when the sensitive attribute has
    a hierarchy (e.g. Fig. 1's nervous vs circulatory diseases at depth
    1).  Falls back to singleton groups when no hierarchy exists.
    """
    sensitive = published.schema.sensitive
    if sensitive.hierarchy is None:
        return [[i] for i in range(sensitive.cardinality)]
    hierarchy = sensitive.hierarchy
    groups: list[list[int]] = []
    stack = [(hierarchy.root, 0)]
    while stack:
        node, d = stack.pop()
        if d == depth or node.is_leaf:
            codes = [
                sensitive.code_of(hierarchy.leaf_label(r))
                for r in range(node.rank_lo, node.rank_hi + 1)
            ]
            groups.append(sorted(codes))
        else:
            stack.extend((child, d + 1) for child in node.children)
    return groups


def salary_bands(n_values: int = 50, band_width: int = 10) -> list[list[int]]:
    """Consecutive salary-class bands for similarity analysis on CENSUS."""
    return [
        list(range(start, min(start + band_width, n_values)))
        for start in range(0, n_values, band_width)
    ]
