"""The paper's running example: the patient records of Table 1.

Six tuples with QI ``{Weight, Age}`` and sensitive attribute ``Disease``
whose domain hierarchy is Fig. 1 (nervous vs circulatory diseases).  The
module also builds the 19-tuple table of Example 2, which exercises the
bucketization and reallocation phases with the exact numbers worked
through in the paper — both serve as regression fixtures for the tests.
"""

from __future__ import annotations

import numpy as np

from ..hierarchy import Hierarchy
from .schema import Attribute, Schema, SensitiveAttribute
from .table import Table

#: Disease names in Fig. 1 pre-order: nervous first, then circulatory.
DISEASES = (
    "headache",
    "epilepsy",
    "brain tumors",
    "anemia",
    "angina",
    "heart murmur",
)


def disease_hierarchy() -> Hierarchy:
    """Fig. 1: nervous and circulatory diseases."""
    return Hierarchy.from_spec(
        (
            "nervous and circulatory diseases",
            [
                ("nervous diseases", ["headache", "epilepsy", "brain tumors"]),
                ("circulatory diseases", ["anemia", "angina", "heart murmur"]),
            ],
        )
    )


def patients_schema() -> Schema:
    """QI = {Weight, Age}; SA = Disease with the Fig. 1 hierarchy."""
    qi = [
        Attribute.numerical("Weight", 50, 80),
        Attribute.numerical("Age", 40, 70),
    ]
    sa = SensitiveAttribute("Disease", DISEASES, hierarchy=disease_hierarchy())
    return Schema(qi, sa)


def make_patients() -> Table:
    """Table 1 of the paper (IDs 01–06, identifying columns dropped)."""
    schema = patients_schema()
    weight = [70, 60, 50, 70, 80, 60]
    age = [40, 60, 50, 50, 50, 70]
    disease = [
        "headache",       # 01 Mike
        "epilepsy",       # 02 John
        "brain tumors",   # 03 Bob
        "heart murmur",   # 04 Alice
        "anemia",         # 05 Beth
        "angina",         # 06 Carol
    ]
    sa = np.array([schema.sensitive.code_of(d) for d in disease])
    qi = np.column_stack([np.array(weight), np.array(age)])
    return Table(schema, qi, sa)


#: SA counts of the Example 2 table: 2 headache, 3 epilepsy,
#: 3 brain tumors, 3 anemia, 4 angina, 4 heart murmur (19 tuples).
EXAMPLE2_COUNTS = {
    "headache": 2,
    "epilepsy": 3,
    "brain tumors": 3,
    "anemia": 3,
    "angina": 4,
    "heart murmur": 4,
}


def make_example2_table(seed: int = 11) -> Table:
    """The 19-tuple table of Example 2.

    The paper specifies only the SA histogram; QI values are synthesized
    deterministically on a small grid so generalization has something to
    do.  The SA histogram is exact, which is all the worked example
    depends on.
    """
    schema = patients_schema()
    rng = np.random.default_rng(seed)
    codes: list[int] = []
    for name, count in EXAMPLE2_COUNTS.items():
        codes.extend([schema.sensitive.code_of(name)] * count)
    sa = np.array(codes, dtype=np.int64)
    n = sa.shape[0]
    weight = rng.integers(50, 81, size=n)
    age = rng.integers(40, 71, size=n)
    return Table(schema, np.column_stack([weight, age]), sa)
