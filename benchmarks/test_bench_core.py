"""Micro-benchmarks of the core building blocks.

These time the substrate pieces in isolation so performance regressions
are attributable: Hilbert encoding throughput, the DPpartition dynamic
program, end-to-end BUREL, the Mondrian comparators, and the
perturbation + reconstruction path.
"""

import numpy as np

from repro.anonymity import l_mondrian, sabre
from repro.core import BetaLikeness, burel, dp_partition, perturb_table
from repro.dataset import DEFAULT_QI, make_census
from repro.hilbert import hilbert_encode
from repro.query import PerturbedAnswerer, make_workload

N = 12_000


def test_bench_hilbert_encode(benchmark, rng=np.random.default_rng(0)):
    points = rng.integers(0, 1 << 10, size=(100_000, 3))
    result = benchmark(hilbert_encode, points, 10)
    assert result.shape == (100_000,)


def test_bench_dp_partition(benchmark):
    table = make_census(N, seed=7, qi_names=DEFAULT_QI)
    probs = table.sa_distribution()
    model = BetaLikeness(4.0)
    partition = benchmark(dp_partition, probs, model, 0.5)
    assert len(partition) >= 1


def test_bench_burel_end_to_end(benchmark):
    table = make_census(N, seed=7, qi_names=DEFAULT_QI)
    result = benchmark(burel, table, 4.0)
    assert len(result.published) > 1


def test_bench_l_mondrian(benchmark):
    table = make_census(N, seed=7, qi_names=DEFAULT_QI)
    result = benchmark(l_mondrian, table, 4.0)
    assert len(result.published) >= 1


def test_bench_sabre(benchmark):
    table = make_census(N, seed=7, qi_names=DEFAULT_QI)
    result = benchmark(sabre, table, 0.2)
    assert len(result.published) >= 1


def test_bench_perturb_and_answer(benchmark):
    table = make_census(N, seed=7)
    queries = make_workload(
        table.schema, 100, 3, 0.1, np.random.default_rng(0)
    )

    def run():
        perturbed = perturb_table(
            table, 4.0, rng=np.random.default_rng(1)
        )
        answer = PerturbedAnswerer(perturbed)
        return [answer(q) for q in queries]

    estimates = benchmark(run)
    assert len(estimates) == 100
