"""Materialization of ECs: drawing concrete tuples from buckets (§4.5).

The reallocation phase fixes *how many* tuples each EC takes from each
bucket; this module decides *which* tuples.  BUREL greedily groups
tuples that are close in QI-space so the resulting bounding boxes — and
therefore the information loss of Eq. 4 — stay small.  Exact
nearest-neighbour search is too expensive, so the paper sorts each
bucket's tuples by their Hilbert-curve value and picks, for every EC, the
tuples whose Hilbert values are nearest to a seed tuple's.

:class:`HilbertRetriever` implements that heuristic with an amortized
near-constant-time "alive neighbour" structure (union-find style path
compression over the sorted order), so materializing all ECs costs
``O(|DB| α + |S_G| |φ| log |DB|)``.

:class:`RandomRetriever` is the ablation (random draws, no locality),
used to quantify how much the Hilbert heuristic buys.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from ..dataset.table import Table
from ..hilbert import scaled_hilbert_key
from .bucketize import BucketPartition


def _row_buckets(table: Table, partition: BucketPartition) -> np.ndarray:
    """Bucket index of every row, via a vectorized value->bucket map."""
    value_to_bucket = np.full(table.sa_cardinality, -1, dtype=np.int64)
    for j, bucket in enumerate(partition.buckets):
        value_to_bucket[bucket] = j
    row_bucket = value_to_bucket[table.sa]
    if np.any(row_bucket < 0):
        raise ValueError("the bucket partition does not cover every SA value")
    return row_bucket


def qi_space_keys(table: Table) -> np.ndarray:
    """Hilbert keys of all tuples in normalized QI-space.

    Each attribute's domain is stretched to the full curve grid so that
    one attribute's full span weighs the same in every direction —
    mirroring the information-loss metric's normalization (Eq. 2) and
    preserving curve locality for mixed-cardinality schemas.
    """
    lows = np.array([attr.lo for attr in table.schema.qi], dtype=float)
    highs = np.array([attr.hi for attr in table.schema.qi], dtype=float)
    return scaled_hilbert_key(table.qi, lows, highs).astype(np.int64)


class Retriever(Protocol):
    """Anything that can turn EC size specs into row-index groups."""

    def materialize(self, specs: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Return one array of source-row indices per EC spec."""
        ...


class _AliveOrder:
    """Alive/used bookkeeping over a sorted array with O(α) neighbour hops.

    ``right[i]`` points at the smallest alive position >= i and ``left[i]``
    at the largest alive position <= i, both maintained with path
    compression.  Positions are killed once taken.
    """

    def __init__(self, size: int):
        # Alive entries are self-loops; killed ones point past
        # themselves.  The right structure is indexed by position with a
        # sentinel self-loop at `size`; the left structure is indexed by
        # position + 1 with a sentinel self-loop at 0 (= "position -1").
        self.right = np.arange(size + 1, dtype=np.int64)
        self.left = np.arange(size + 1, dtype=np.int64)
        self.alive = size

    def find_right(self, i: int) -> int:
        """Smallest alive position >= i, or ``size`` if none."""
        root = i
        while self.right[root] != root:
            root = self.right[root]
        # Path compression.
        while self.right[i] != root:
            self.right[i], i = root, self.right[i]
        return int(root)

    def find_left(self, i: int) -> int:
        """Largest alive position <= i, or -1 if none."""
        if i < 0:
            return -1
        root = i + 1  # shifted coordinates
        while self.left[root] != root:
            root = self.left[root]
        j = i + 1
        while self.left[j] != root:
            self.left[j], j = root, self.left[j]
        return int(root) - 1

    def kill(self, i: int) -> None:
        """Mark position ``i`` used."""
        self.right[i] = i + 1
        self.left[i + 1] = i  # shifted: next lookup lands on position i-1
        self.alive -= 1


class _BucketStore:
    """One bucket's tuples sorted by Hilbert key, with alive tracking."""

    def __init__(self, rows: np.ndarray, keys: np.ndarray):
        order = np.argsort(keys, kind="stable")
        self.rows = rows[order]
        self.keys = keys[order]
        self.order = _AliveOrder(rows.shape[0])

    @property
    def n_alive(self) -> int:
        return self.order.alive

    def first_alive_key(self) -> int | None:
        pos = self.order.find_right(0)
        if pos >= self.rows.shape[0]:
            return None
        return int(self.keys[pos])

    def take_nearest(self, seed_key: int, count: int) -> np.ndarray:
        """Take the ``count`` alive tuples with keys nearest ``seed_key``."""
        if count > self.order.alive:
            raise ValueError("bucket exhausted: spec exceeds remaining tuples")
        taken = np.empty(count, dtype=np.int64)
        size = self.rows.shape[0]
        pos = int(np.searchsorted(self.keys, seed_key))
        r = self.order.find_right(pos)
        l = self.order.find_left(pos - 1)
        for k in range(count):
            take_right: bool
            if r >= size and l < 0:
                raise AssertionError(
                    "bucket ran out of alive tuples mid-draw; spec "
                    "validation should have prevented this"
                )
            if r >= size:
                take_right = False
            elif l < 0:
                take_right = True
            else:
                dist_r = int(self.keys[r]) - seed_key
                dist_l = seed_key - int(self.keys[l])
                take_right = dist_r <= dist_l
            if take_right:
                taken[k] = self.rows[r]
                self.order.kill(r)
                r = self.order.find_right(r + 1)
            else:
                taken[k] = self.rows[l]
                self.order.kill(l)
                l = self.order.find_left(l - 1)
        return taken


class HilbertRetriever:
    """Greedy nearest-neighbour retrieval along the Hilbert curve.

    For every EC the seed is the alive tuple with the smallest Hilbert
    value among buckets the EC draws from (a deterministic sweep along
    the curve; the paper seeds randomly, pass ``rng`` to mimic that).
    """

    def __init__(
        self,
        table: Table,
        partition: BucketPartition,
        rng: np.random.Generator | None = None,
    ):
        self.table = table
        self.partition = partition
        self.rng = rng
        keys = qi_space_keys(table)
        row_bucket = _row_buckets(table, partition)
        self.buckets: list[_BucketStore] = []
        for j in range(len(partition)):
            rows = np.nonzero(row_bucket == j)[0].astype(np.int64)
            self.buckets.append(_BucketStore(rows, keys[rows]))

    def bucket_sizes(self) -> np.ndarray:
        """Tuple counts per bucket (input to the reallocation phase)."""
        return np.array([b.rows.shape[0] for b in self.buckets], dtype=np.int64)

    def _seed_key(self, spec: np.ndarray) -> int:
        candidates = [
            self.buckets[j].first_alive_key()
            for j in range(len(self.buckets))
            if spec[j] > 0
        ]
        candidates = [c for c in candidates if c is not None]
        if not candidates:
            raise ValueError("no tuples remain for a non-empty spec")
        if self.rng is not None:
            return int(self.rng.choice(candidates))
        return min(candidates)

    def materialize(self, specs: Sequence[np.ndarray]) -> list[np.ndarray]:
        specs = [np.asarray(s, dtype=np.int64) for s in specs]
        self._validate(specs)
        groups: list[np.ndarray] = []
        for spec in specs:
            seed = self._seed_key(spec)
            parts = [
                self.buckets[j].take_nearest(seed, int(spec[j]))
                for j in range(len(self.buckets))
                if spec[j] > 0
            ]
            groups.append(np.concatenate(parts))
        return groups

    def _validate(self, specs: Sequence[np.ndarray]) -> None:
        totals = np.zeros(len(self.buckets), dtype=np.int64)
        for spec in specs:
            if spec.shape != (len(self.buckets),):
                raise ValueError("spec length must equal the bucket count")
            if np.any(spec < 0):
                raise ValueError("specs must be non-negative")
            totals += spec
        if not np.array_equal(totals, self.bucket_sizes()):
            raise ValueError(
                "specs must consume each bucket exactly "
                f"(need {self.bucket_sizes().tolist()}, got {totals.tolist()})"
            )


class RandomRetriever:
    """Ablation: draw tuples uniformly at random from each bucket."""

    def __init__(
        self,
        table: Table,
        partition: BucketPartition,
        rng: np.random.Generator | None = None,
    ):
        self.table = table
        self.partition = partition
        rng = rng or np.random.default_rng(0)
        row_bucket = _row_buckets(table, partition)
        self._pools: list[np.ndarray] = []
        self._cursors: list[int] = []
        for j in range(len(partition)):
            rows = np.nonzero(row_bucket == j)[0].astype(np.int64)
            rng.shuffle(rows)
            self._pools.append(rows)
            self._cursors.append(0)

    def bucket_sizes(self) -> np.ndarray:
        return np.array([p.shape[0] for p in self._pools], dtype=np.int64)

    def materialize(self, specs: Sequence[np.ndarray]) -> list[np.ndarray]:
        groups: list[np.ndarray] = []
        for spec in specs:
            parts = []
            for j, count in enumerate(np.asarray(spec, dtype=np.int64)):
                if count == 0:
                    continue
                start = self._cursors[j]
                end = start + int(count)
                if end > self._pools[j].shape[0]:
                    raise ValueError("bucket exhausted: spec exceeds remaining tuples")
                parts.append(self._pools[j][start:end])
                self._cursors[j] = end
            if not parts:
                raise ValueError("empty EC spec")
            groups.append(np.concatenate(parts))
        return groups
