"""A deFinetti-style attack on group-based publications (Section 7).

Kifer's deFinetti attack learns the correlation between QI and SA values
from a group-based publication (such as Anatomy), where each group
reveals its QI tuples and its SA multiset but not the assignment between
them.  The attack starts from an arbitrary within-group assignment,
trains a Naive Bayes classifier on it, re-evaluates each group's
assignment under the classifier, and iterates to convergence.

The paper cites the attack without pseudo-code; this module implements
the natural soft-assignment (EM-flavoured) instantiation, documented in
DESIGN.md §7:

1. initialize each tuple's SA posterior to its group's SA distribution;
2. **M-step**: estimate per-attribute conditionals ``Pr[a | v]`` from
   the soft counts;
3. **E-step**: within each group, set each tuple's posterior
   proportional to the NB likelihood, then rescale columns so the
   group's expected SA counts match its published multiset (one Sinkhorn
   pass keeps the multiset constraint active without an expensive exact
   assignment);
4. repeat; finally predict per tuple the highest-posterior value
   consistent with the group.

The attack's accuracy against the true assignment is the §7 measure of
interest; run against BUREL output (groups = ECs) it quantifies how the
β threshold curbs the attack, and against Anatomy it reproduces
Cormode's observation that small ℓ is vulnerable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..anonymity.anatomy import AnatomyTable
from ..dataset.published import GeneralizedTable
from ..dataset.table import Table
from .naive_bayes import AttackResult


@dataclass(frozen=True)
class DeFinettiResult(AttackResult):
    """Attack outcome plus convergence diagnostics."""

    iterations: int = 0
    converged: bool = True


def _groups_of(publication) -> list[np.ndarray]:
    """Member-row arrays of a group-based publication, coverage-checked.

    Every source row must belong to exactly one group: an uncovered row
    would keep an all-zero posterior through every EM iteration and its
    arbitrary argmax-0 prediction would be scored as a real guess.
    """
    if isinstance(publication, AnatomyTable):
        groups = [g.rows for g in publication.groups]
    elif isinstance(publication, GeneralizedTable):
        groups = [ec.rows for ec in publication.classes]
    else:
        raise TypeError(f"unsupported publication type {type(publication)!r}")
    n = publication.source.n_rows
    all_rows = (
        np.concatenate(groups) if groups else np.empty(0, dtype=np.int64)
    )
    membership = np.bincount(all_rows, minlength=n)
    if membership.shape[0] != n or np.any(membership != 1):
        raise ValueError(
            "publication's groups must cover every source row exactly once"
        )
    return groups


def definetti_attack(
    publication,
    max_iterations: int = 30,
    tolerance: float = 1e-4,
    sinkhorn_passes: int = 5,
) -> DeFinettiResult:
    """Mount the deFinetti attack on a group-based publication.

    Args:
        publication: An :class:`AnatomyTable` or
            :class:`GeneralizedTable` (its source supplies ground truth).
        max_iterations: EM iteration budget.
        tolerance: Stop when the mean absolute posterior change falls
            below this.
        sinkhorn_passes: Column/row rescaling passes per E-step keeping
            group multisets satisfied.

    Returns:
        A :class:`DeFinettiResult` with per-tuple predictions.
    """
    groups = _groups_of(publication)  # validates the publication type
    table: Table = publication.source
    n, m = table.n_rows, table.sa_cardinality

    # Posterior[r, v] = attacker's belief that row r holds SA value v.
    posterior = np.zeros((n, m), dtype=float)
    group_counts = []
    for rows in groups:
        counts = np.bincount(table.sa[rows], minlength=m).astype(float)
        group_counts.append(counts)
        posterior[rows, :] = counts / rows.size

    qi_offsets = [attr.lo for attr in table.schema.qi]
    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        # M-step: soft conditionals Pr[a | v] per attribute.
        conditionals = []
        value_mass = posterior.sum(axis=0)  # expected count per SA value
        safe_mass = np.where(value_mass > 0, value_mass, 1.0)
        for dim, attr in enumerate(table.schema.qi):
            joint = np.zeros((attr.cardinality, m), dtype=float)
            np.add.at(joint, table.qi[:, dim] - qi_offsets[dim], posterior)
            conditionals.append(joint / safe_mass)

        # E-step: NB likelihood per row and value.
        likelihood = np.ones((n, m), dtype=float)
        for dim, conditional in enumerate(conditionals):
            likelihood *= conditional[table.qi[:, dim] - qi_offsets[dim], :]

        new_posterior = np.zeros_like(posterior)
        for rows, counts in zip(groups, group_counts):
            block = likelihood[rows, :] + 1e-30
            support = counts > 0
            block[:, ~support] = 0.0
            # Sinkhorn: columns must sum to the group's multiset counts,
            # rows to 1.
            for _ in range(sinkhorn_passes):
                col = block.sum(axis=0)
                scale = np.where(col > 0, counts / np.where(col > 0, col, 1.0), 0.0)
                block *= scale
                row = block.sum(axis=1, keepdims=True)
                block /= np.where(row > 0, row, 1.0)
            new_posterior[rows, :] = block

        delta = float(np.abs(new_posterior - posterior).mean())
        posterior = new_posterior
        if delta < tolerance:
            converged = True
            break

    predictions = np.argmax(posterior, axis=1).astype(np.int64)
    return DeFinettiResult(
        accuracy=float(np.mean(predictions == table.sa)),
        majority_baseline=float(table.sa_distribution().max()),
        predictions=predictions,
        iterations=iterations,
        converged=converged,
    )


def random_assignment_baseline(publication, seed: int = 0) -> AttackResult:
    """Expected accuracy of guessing a random within-group assignment.

    The natural floor for the deFinetti attack: an attacker with no QI
    model can only draw an assignment consistent with each group's
    multiset.
    """
    table: Table = publication.source
    rng = np.random.default_rng(seed)
    predictions = np.full(table.n_rows, -1, dtype=np.int64)
    for rows in _groups_of(publication):
        values = table.sa[rows].copy()
        rng.shuffle(values)
        predictions[rows] = values
    return AttackResult(
        accuracy=float(np.mean(predictions == table.sa)),
        majority_baseline=float(table.sa_distribution().max()),
        predictions=predictions,
    )
