"""Setuptools shim.

``pip install -e .`` (or, in offline environments without ``wheel``
where PEP 660 editable installs cannot build, the legacy
``python setup.py develop``) installs the package and exposes the
``repro`` console entry point declared in ``pyproject.toml``, so the
``repro generalize/perturb/publish/query`` subcommands run outside the
checkout.

All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
