"""Multi-process sharded execution over Hilbert-key range partitions.

The tentpole of this layer is :class:`ShardedSession`: partition a
table into contiguous Hilbert-key ranges (:class:`ShardPlan`), run
anonymization / audit metrics / workload evaluation per shard in a
process pool (or inline with ``workers=1`` — the same code path minus
the pool), and merge the results deterministically so, at a fixed
shard count, sharded outputs are byte-identical across worker counts
(the shard count itself shapes a publication: groups form within key
ranges).

Entry points:

* :class:`ShardedSession` / :class:`ShardedRun` — the session object and
  its merged-run handle (``anonymize`` → ``audit`` / ``evaluate`` /
  ``publish``).
* :func:`sweep_jobs` — job-level parallelism for parameter sweeps (one
  whole-table engine run per process).
* :class:`ProcessEvaluator` — the process-pool answering backend of
  :class:`repro.service.QueryService`'s ``executor="process"`` mode.
* :class:`ShardPlan` / :class:`Shard` — the pure partition planner.
* :class:`~repro.parallel.shm.ShmArrays` and friends — the
  shared-memory row-array transport.

The facade exposes the common paths directly:
``Dataset.anonymize(..., workers=N)``, ``Dataset.sweep(specs,
workers=N)`` and ``QueryService(..., executor="process")``.
"""

from .executor import (
    ProcessEvaluator,
    ShardedRun,
    ShardedSession,
    sweep_jobs,
)
from .plan import Shard, ShardDiff, ShardPlan
from .shm import ArrayHandle, ShmArrays, TableHandle, load_array, load_table

__all__ = [
    "ArrayHandle",
    "ProcessEvaluator",
    "Shard",
    "ShardDiff",
    "ShardPlan",
    "ShardedRun",
    "ShardedSession",
    "ShmArrays",
    "TableHandle",
    "load_array",
    "load_table",
    "sweep_jobs",
]
