"""The committed findings baseline: grandfathered, with reasons.

A baseline entry identifies a finding by ``(rule, path, code)`` — the
*stripped source line*, not the line number, so findings survive
unrelated edits above them.  CI fails on any finding not consumed by a
baseline entry; entries carry a human-written ``reason`` documenting
why the flagged construct is intentional (the same contract as inline
suppressions, but kept out of hot source files and reviewable in one
place: ``analysis/baseline.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .rules import Finding


class BaselineError(ValueError):
    """The baseline file is missing or malformed (a usage error)."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    code: str
    reason: str = ""
    count: int = 1

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.code)

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "path": self.path,
            "code": self.code,
            "reason": self.reason,
        }
        if self.count != 1:
            out["count"] = self.count
        return out


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise BaselineError(f"baseline file not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise BaselineError(f"malformed baseline {path}: {exc}") from None
        if not isinstance(payload, dict) or "findings" not in payload:
            raise BaselineError(
                f"malformed baseline {path}: expected a 'findings' list"
            )
        entries = []
        for raw in payload["findings"]:
            try:
                entries.append(
                    BaselineEntry(
                        rule=raw["rule"],
                        path=raw["path"],
                        code=raw["code"],
                        reason=raw.get("reason", ""),
                        count=int(raw.get("count", 1)),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(
                    f"malformed baseline entry in {path}: {raw!r} ({exc})"
                ) from None
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": 1,
            "findings": [
                entry.to_dict()
                for entry in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def apply(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split findings into (new, grandfathered) and report stale
        entries whose finding no longer exists."""
        budget: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.key] = budget.get(entry.key, 0) + entry.count
        new: list[Finding] = []
        old: list[Finding] = []
        for finding in findings:
            key = (finding.rule, finding.path, finding.code)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                old.append(
                    Finding(**{**finding.__dict__, "baselined": True})
                )
            else:
                new.append(finding)
        stale_keys = {key for key, left in budget.items() if left > 0}
        stale = [entry for entry in self.entries if entry.key in stale_keys]
        return new, old, stale

    @classmethod
    def from_findings(
        cls, findings: list[Finding], previous: "Baseline | None" = None
    ) -> "Baseline":
        """Rebuild the baseline from current findings, keeping reasons
        of surviving entries (``--update-baseline``)."""
        reasons: dict[tuple[str, str, str], str] = {}
        if previous is not None:
            for entry in previous.entries:
                if entry.reason:
                    reasons.setdefault(entry.key, entry.reason)
        counts: dict[tuple[str, str, str], int] = {}
        for finding in findings:
            key = (finding.rule, finding.path, finding.code)
            counts[key] = counts.get(key, 0) + 1
        entries = [
            BaselineEntry(
                rule=rule,
                path=path,
                code=code,
                reason=reasons.get(
                    (rule, path, code),
                    "grandfathered by --update-baseline; "
                    "document why this is intentional",
                ),
                count=count,
            )
            for (rule, path, code), count in sorted(counts.items())
        ]
        return cls(entries=entries)
