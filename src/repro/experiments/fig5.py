"""Figure 5: information loss and runtime as functions of β.

BUREL vs LMondrian (Mondrian + β-likeness) vs DMondrian (Mondrian +
δ-disclosure-privacy, δ derived from β).  The paper reports that AIL
falls as β grows for all three, that BUREL has the lowest AIL and
runtime, and that DMondrian — whose two-sided constraint additionally
bounds negative information gain and requires every SA value in every
EC — is the most lossy.
"""

from __future__ import annotations

import argparse

from ..anonymity import d_mondrian, l_mondrian
from ..core import burel
from ..metrics import average_information_loss
from .runner import (
    ExperimentConfig,
    ExperimentResult,
    add_common_args,
    config_from_args,
)

DEFAULT_CONFIG = ExperimentConfig()


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> list[ExperimentResult]:
    """Fig. 5(a) AIL and Fig. 5(b) wall-clock seconds, vs β."""
    table = config.table()
    ail: dict[str, list[float]] = {"BUREL": [], "LMondrian": [], "DMondrian": []}
    secs: dict[str, list[float]] = {"BUREL": [], "LMondrian": [], "DMondrian": []}
    for beta in config.betas:
        b = burel(table, beta)
        ail["BUREL"].append(average_information_loss(b.published))
        secs["BUREL"].append(b.elapsed_seconds)
        lm = l_mondrian(table, beta)
        ail["LMondrian"].append(average_information_loss(lm.published))
        secs["LMondrian"].append(lm.elapsed_seconds)
        dm = d_mondrian(table, beta)
        ail["DMondrian"].append(average_information_loss(dm.published))
        secs["DMondrian"].append(dm.elapsed_seconds)
    x = list(config.betas)
    return [
        ExperimentResult(
            name="fig5a",
            title="information loss vs beta",
            x_label="beta",
            x_values=x,
            series=ail,
        ),
        ExperimentResult(
            name="fig5b",
            title="wall-clock time vs beta (relative ordering only)",
            x_label="beta",
            x_values=x,
            series=secs,
            notes="Python reimplementation at reduced scale; compare shapes",
        ),
    ]


def main() -> None:  # pragma: no cover - CLI entry point
    parser = argparse.ArgumentParser(description=__doc__)
    add_common_args(parser)
    config = config_from_args(parser.parse_args(), DEFAULT_CONFIG)
    for result in run(config):
        print(result.to_text())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
