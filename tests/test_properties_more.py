"""Additional property-based tests: comparators, retrieval internals,
queries and groupings on random inputs."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anonymity import k_mondrian, sabre
from repro.core.retrieve import _AliveOrder
from repro.dataset import Attribute, Schema, SensitiveAttribute, Table
from repro.metrics import measured_t
from repro.query import answer_precise, make_query


@st.composite
def random_tables(draw):
    n_qi = draw(st.integers(min_value=1, max_value=3))
    m = draw(st.integers(min_value=2, max_value=6))
    n = draw(st.integers(min_value=m * 4, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    schema = Schema(
        [Attribute.numerical(f"x{j}", 0, 15) for j in range(n_qi)],
        SensitiveAttribute("s", tuple(f"v{i}" for i in range(m))),
    )
    qi = rng.integers(0, 16, size=(n, n_qi))
    sa = rng.integers(0, m, size=n)
    sa[:m] = np.arange(m)
    return Table(schema, qi, sa)


@given(table=random_tables(), k=st.integers(min_value=2, max_value=20))
@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_mondrian_k_anonymity_property(table, k):
    """k-anonymity holds for any table when k <= n; classes partition."""
    if k > table.n_rows:
        return
    result = k_mondrian(table, k)
    sizes = [ec.size for ec in result.published]
    assert min(sizes) >= k
    rows = np.concatenate([ec.rows for ec in result.published])
    assert len(np.unique(rows)) == table.n_rows


@given(table=random_tables(), t=st.floats(min_value=0.05, max_value=0.8))
@settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_sabre_t_closeness_property(table, t):
    """SABRE's worst-case construction never exceeds its budget."""
    result = sabre(table, t)
    assert measured_t(result.published) <= t + 1e-9


@given(
    size=st.integers(min_value=1, max_value=40),
    kills=st.lists(st.integers(min_value=0, max_value=39), max_size=60),
    probes=st.lists(st.integers(min_value=0, max_value=39), max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_alive_order_matches_bruteforce(size, kills, probes):
    """The union-find neighbour structure agrees with a boolean mask."""
    order = _AliveOrder(size)
    alive = np.ones(size, dtype=bool)
    for k in kills:
        if k < size and alive[k]:
            order.kill(k)
            alive[k] = False
    for p in probes:
        if p >= size:
            continue
        # Brute-force neighbours.
        right = next((i for i in range(p, size) if alive[i]), size)
        left = next((i for i in range(p, -1, -1) if alive[i]), -1)
        assert order.find_right(p) == right
        assert order.find_left(p) == left
    assert order.alive == int(alive.sum())


@given(
    table=random_tables(),
    lam=st.integers(min_value=1, max_value=3),
    theta=st.floats(min_value=0.02, max_value=0.5),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=50, deadline=None)
def test_query_answers_bounded_property(table, lam, theta, seed):
    """Precise answers always lie in [0, n] and respect predicates."""
    if lam > table.schema.n_qi:
        return
    rng = np.random.default_rng(seed)
    query = make_query(table.schema, lam, theta, rng)
    answer = answer_precise(table, query)
    assert 0 <= answer <= table.n_rows
    # Shrinking the SA range can only shrink the answer.
    lo, hi = query.sa_range
    if hi > lo:
        from repro.query import CountQuery

        narrower = CountQuery(qi_ranges=query.qi_ranges, sa_range=(lo, hi - 1))
        assert answer_precise(table, narrower) <= answer


@given(
    m=st.integers(min_value=2, max_value=10),
    n_groups=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=60, deadline=None)
def test_grouping_counts_conserve_mass(m, n_groups, seed):
    """Aggregating counts over any random grouping conserves totals."""
    from repro.extensions import SAGrouping

    rng = np.random.default_rng(seed)
    n_groups = min(n_groups, m)
    assignment = rng.integers(0, n_groups, size=m)
    assignment[:n_groups] = np.arange(n_groups)  # every group non-empty
    groups = [list(np.nonzero(assignment == g)[0]) for g in range(n_groups)]
    grouping = SAGrouping.from_lists(m, groups)
    counts = rng.integers(0, 50, size=m)
    aggregated = grouping.counts(counts)
    assert aggregated.sum() == counts.sum()
    assert aggregated.shape == (n_groups,)
