"""End-to-end chain baseline: facade artifact reuse vs cold layers.

Runs the paper's full custodian chain — anonymize under β-likeness,
audit the release, certify + publish it to a store, evaluate a COUNT
workload, then reload the stored publication and serve the workload
from it — for a sweep of β values, two ways:

* **cold** — the pre-facade sequence: each layer is invoked directly
  through its module API with every process-global cache cleared before
  the call, the way the chain actually executes when each step is a
  separate tool invocation (CLI run, audit script, publish script,
  serving process) over the four disjoint layer APIs.  Every step
  re-derives the per-table artifacts the previous step already had:
  Hilbert keys per run, the publication view twice per β (audit, then
  the store's certification gate), the mask engine / encoded workload /
  precise answers per evaluation.
* **facade** — one :class:`repro.api.Dataset` session: the sweep runs
  as one batch over shared preprocessing, the audit's content-keyed
  view feeds the certification gate, and one mask engine + one precise
  pass serve every evaluation — including the served reload, which hits
  the same content digests as the publication it round-tripped from.

Every facade output is checked **byte-identical** to the cold path:
publication content digests, privacy/risk profiles, store ids + audit
evidence, error profiles, and served estimates.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_api.py [--rows 30000] \\
        [--queries 2000] [--out benchmarks/BENCH_api.json]

Exits non-zero if the facade chain's speedup over the cold sequence
drops below the 1.5x acceptance floor, or any output diverges.
Standalone script (not pytest-collected), like the other benches.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

import repro.query.evaluate as evaluate_module
from _obs import telemetry_block
from repro.api import Dataset
from repro.audit import clear_view_cache
from repro.audit.evaluate import _audit_publications
from repro.dataset import CENSUS_QI_ORDER, make_census
from repro.engine import run as engine_run
from repro.io import publication_digest
from repro.query import make_workload
from repro.query.evaluate import _evaluate_workload
from repro.service import PublicationStore

BETAS = (1.0, 2.0, 3.0, 4.0)
LAMBDA = 3
THETA = 0.1
QUERY_SEED = 13


def clear_global_caches() -> None:
    """Reset every process-global layer cache (fresh-process semantics)."""
    evaluate_module._ENGINES.clear()
    evaluate_module._PRECISE.clear()
    evaluate_module._ENCODED.clear()
    clear_view_cache()


def run_cold(table, queries, root) -> tuple[dict, dict]:
    """The layer-by-layer chain with cold caches at every step."""
    store = PublicationStore(root)
    outputs: dict[str, dict] = {}
    seconds = {
        "anonymize": 0.0, "audit": 0.0, "publish": 0.0,
        "evaluate": 0.0, "serve": 0.0,
    }
    for beta in BETAS:
        out: dict = {}

        clear_global_caches()
        start = time.perf_counter()
        published = engine_run("burel", table, beta=beta).published
        seconds["anonymize"] += time.perf_counter() - start
        out["digest"] = publication_digest(published)

        clear_global_caches()
        start = time.perf_counter()
        report = _audit_publications(
            table, {"candidate": published}, ordered_emd=True
        )["candidate"]
        seconds["audit"] += time.perf_counter() - start
        out["privacy"] = dataclasses.asdict(report.privacy)
        out["risk"] = dataclasses.asdict(report.risk)

        clear_global_caches()
        start = time.perf_counter()
        record = store.put(published, requirement={"beta": beta})
        seconds["publish"] += time.perf_counter() - start
        out["pub_id"] = record.pub_id
        out["evidence"] = record.audit

        clear_global_caches()
        start = time.perf_counter()
        profile = _evaluate_workload(
            table, {"candidate": published}, queries
        )["candidate"]
        seconds["evaluate"] += time.perf_counter() - start
        out["profile"] = dataclasses.asdict(profile)

        clear_global_caches()
        start = time.perf_counter()
        reloaded = store.get(record.pub_id)
        served = _evaluate_workload(
            reloaded.source, {"served": reloaded}, queries
        )["served"]
        seconds["serve"] += time.perf_counter() - start
        out["served"] = dataclasses.asdict(served)

        outputs[f"beta={beta}"] = out
    return outputs, seconds


def run_facade(table, queries, root) -> tuple[dict, dict, dict]:
    """The same chain through one Dataset session + shared cache."""
    ds = Dataset(table)
    store = PublicationStore(root, cache=ds.cache)
    outputs: dict[str, dict] = {}
    seconds = {
        "anonymize": 0.0, "audit": 0.0, "publish": 0.0,
        "evaluate": 0.0, "serve": 0.0,
    }

    start = time.perf_counter()
    runs = ds.sweep([("burel", {"beta": beta}) for beta in BETAS])
    seconds["anonymize"] += time.perf_counter() - start

    for beta, run in zip(BETAS, runs):
        out: dict = {"digest": publication_digest(run.published)}

        start = time.perf_counter()
        report = run.audit(ordered_emd=True)
        seconds["audit"] += time.perf_counter() - start
        out["privacy"] = dataclasses.asdict(report.privacy)
        out["risk"] = dataclasses.asdict(report.risk)

        start = time.perf_counter()
        record = run.publish(store, requirement={"beta": beta})
        seconds["publish"] += time.perf_counter() - start
        out["pub_id"] = record.pub_id
        out["evidence"] = record.audit

        start = time.perf_counter()
        out["profile"] = dataclasses.asdict(run.evaluate(queries))
        seconds["evaluate"] += time.perf_counter() - start

        start = time.perf_counter()
        reloaded = store.get(record.pub_id)
        served = ds.evaluate({"served": reloaded}, queries)["served"]
        seconds["serve"] += time.perf_counter() - start
        out["served"] = dataclasses.asdict(served)

        outputs[f"beta={beta}"] = out
    return outputs, seconds, ds.cache.stats()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=30_000)
    parser.add_argument("--queries", type=int, default=2_000)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "BENCH_api.json",
    )
    parser.add_argument("--floor", type=float, default=1.5)
    args = parser.parse_args()

    table = make_census(
        args.rows, seed=7, correlation=0.3, qi_names=CENSUS_QI_ORDER
    )
    queries = make_workload(
        table.schema, args.queries, LAMBDA, THETA, rng=QUERY_SEED
    )

    with tempfile.TemporaryDirectory() as cold_root, \
            tempfile.TemporaryDirectory() as facade_root:
        cold_outputs, cold_seconds = run_cold(table, queries, cold_root)
        clear_global_caches()
        facade_outputs, facade_seconds, cache_stats = run_facade(
            table, queries, facade_root
        )

    if facade_outputs != cold_outputs:
        diverging = [
            key
            for key in cold_outputs
            if facade_outputs.get(key) != cold_outputs[key]
        ]
        raise SystemExit(
            f"regression: facade outputs diverge from the cold "
            f"layer-by-layer chain at {diverging}"
        )

    total_cold = sum(cold_seconds.values())
    total_facade = sum(facade_seconds.values())
    speedup = total_cold / total_facade
    report = {
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "rows": args.rows,
        "queries": args.queries,
        "betas": list(BETAS),
        "lambda": LAMBDA,
        "theta": THETA,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "host": platform.platform(),
        "byte_identical": True,
        "stages": {
            stage: {
                "cold_seconds": round(cold_seconds[stage], 6),
                "facade_seconds": round(facade_seconds[stage], 6),
                "speedup": round(
                    cold_seconds[stage] / max(facade_seconds[stage], 1e-9), 2
                ),
            }
            for stage in cold_seconds
        },
        "chain": {
            "cold_seconds": round(total_cold, 6),
            "facade_seconds": round(total_facade, 6),
            "speedup": round(speedup, 2),
        },
        "artifact_cache": cache_stats,
    }

    def probe(tel):
        clear_global_caches()
        ds = Dataset(table, telemetry=tel)
        run = ds.anonymize("burel", beta=2.0)
        run.audit(ordered_emd=True)
        run.evaluate(queries[:200])

    report["telemetry"] = telemetry_block(
        probe, note="anonymize + audit + evaluate probe, 200 queries"
    )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if speedup < args.floor:
        raise SystemExit(
            f"regression: facade chain speedup {speedup:.2f}x is below "
            f"the {args.floor}x acceptance floor"
        )


if __name__ == "__main__":
    main()
