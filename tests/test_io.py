"""Tests for publication serialization."""

import json

import numpy as np
import pytest

from repro.core import burel, perturb_table
from repro.io import (
    anatomy_to_rows,
    generalized_to_rows,
    load_publication,
    publication_from_payload,
    publication_payload,
    read_csv_rows,
    read_perturbation_sidecar,
    save_publication,
    schema_from_spec,
    schema_to_spec,
    write_anatomy_csv,
    write_generalized_csv,
    write_perturbed_csv,
)


class TestGeneralizedExport:
    def test_one_row_per_tuple(self, patients):
        published = burel(patients, 1.0, margin=0.0).published
        rows = generalized_to_rows(published)
        assert len(rows) == patients.n_rows

    def test_columns(self, patients):
        published = burel(patients, 1.0, margin=0.0).published
        row = generalized_to_rows(published)[0]
        assert set(row) == {"ec", "Weight", "Age", "Disease"}

    def test_sa_values_verbatim(self, patients):
        published = burel(patients, 1.0, margin=0.0).published
        rows = generalized_to_rows(published)
        diseases = sorted(r["Disease"] for r in rows)
        assert diseases == sorted(patients.schema.sensitive.values)

    def test_csv_roundtrip(self, patients, tmp_path):
        published = burel(patients, 1.0, margin=0.0).published
        path = tmp_path / "published.csv"
        write_generalized_csv(published, path)
        rows = read_csv_rows(path)
        assert len(rows) == 6
        assert rows[0]["ec"] == "0"

    def test_census_export(self, census_small, tmp_path):
        published = burel(census_small, 3.0).published
        path = tmp_path / "census.csv"
        write_generalized_csv(published, path)
        rows = read_csv_rows(path)
        assert len(rows) == census_small.n_rows
        # Generalized gender cells are hierarchy node labels.
        assert any(
            r["Gender"] in {"male", "female", "person"} for r in rows
        )


class TestPerturbedExport:
    def test_csv_and_sidecar(self, census_small, tmp_path, rng):
        perturbed = perturb_table(census_small, 4.0, rng=rng)
        path = tmp_path / "perturbed.csv"
        write_perturbed_csv(perturbed, path)
        rows = read_csv_rows(path)
        assert len(rows) == census_small.n_rows
        sidecar = read_perturbation_sidecar(tmp_path / "perturbed.json")
        assert sidecar["transition_matrix"].shape == (50, 50)
        assert sidecar["overall_distribution"].sum() == pytest.approx(1.0)

    def test_sidecar_matrix_matches_scheme(self, census_small, tmp_path, rng):
        perturbed = perturb_table(census_small, 4.0, rng=rng)
        write_perturbed_csv(perturbed, tmp_path / "p.csv")
        sidecar = read_perturbation_sidecar(tmp_path / "p.json")
        assert np.allclose(
            sidecar["transition_matrix"], perturbed.scheme.matrix
        )

    def test_explicit_sidecar_path(self, census_small, tmp_path, rng):
        perturbed = perturb_table(census_small, 4.0, rng=rng)
        write_perturbed_csv(
            perturbed, tmp_path / "p.csv", sidecar=tmp_path / "meta.json"
        )
        assert (tmp_path / "meta.json").exists()
        payload = json.loads((tmp_path / "meta.json").read_text())
        assert payload["sensitive_attribute"] == "SalaryClass"


class _EmptyPublication:
    """Duck-typed empty publication: zero ECs over a schema."""

    def __init__(self, schema):
        self.schema = schema

    def __iter__(self):
        return iter(())


class TestCsvRoundTrips:
    def test_generalized_rows_roundtrip_byte_identical(
        self, census_full_qi, tmp_path
    ):
        """Write → read recovers the exported row dicts exactly, with
        categorical QI boxes rendered as hierarchy node labels."""
        published = burel(census_full_qi, 3.0).published
        path = tmp_path / "g.csv"
        write_generalized_csv(published, path)
        assert read_csv_rows(path) == generalized_to_rows(published)

    def test_empty_publication_writes_header_only(
        self, census_full_qi, tmp_path
    ):
        path = tmp_path / "empty.csv"
        write_generalized_csv(_EmptyPublication(census_full_qi.schema), path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert lines[0].split(",") == (
            ["ec"]
            + [a.name for a in census_full_qi.schema.qi]
            + [census_full_qi.schema.sensitive.name]
        )
        assert read_csv_rows(path) == []

    def test_perturbed_rows_roundtrip_byte_identical(
        self, census_small, tmp_path, rng
    ):
        perturbed = perturb_table(census_small, 4.0, rng=rng)
        path = tmp_path / "p.csv"
        write_perturbed_csv(perturbed, path)
        rows = read_csv_rows(path)
        schema = census_small.schema
        for i in (0, 17, census_small.n_rows - 1):
            for j, attr in enumerate(schema.qi):
                assert rows[i][attr.name] == str(int(perturbed.qi[i, j]))
            assert rows[i][schema.sensitive.name] == (
                schema.sensitive.values[int(perturbed.sa_perturbed[i])]
            )

    def test_pm_sidecar_roundtrip_exact(self, census_small, tmp_path, rng):
        """JSON float round-trip is exact (repr-based), so the recovered
        PM equals the published scheme matrix bit for bit."""
        perturbed = perturb_table(census_small, 4.0, rng=rng)
        write_perturbed_csv(perturbed, tmp_path / "p.csv")
        sidecar = read_perturbation_sidecar(tmp_path / "p.json")
        assert np.array_equal(
            sidecar["transition_matrix"], perturbed.scheme.matrix
        )
        assert np.array_equal(sidecar["alphas"], perturbed.scheme.alphas)
        assert sidecar["domain"] == [
            census_small.schema.sensitive.values[int(c)]
            for c in perturbed.scheme.domain
        ]

    def test_anatomy_rows_roundtrip(self, census_small, tmp_path):
        from repro.anonymity import anatomize

        published = anatomize(census_small, 3, rng=np.random.default_rng(5))
        path = tmp_path / "a.csv"
        write_anatomy_csv(published, path)
        assert read_csv_rows(path) == anatomy_to_rows(published)
        sidecar = json.loads((tmp_path / "a.json").read_text())
        assert sidecar["l"] == 3
        assert len(sidecar["groups"]) == len(published.groups)
        assert (
            sum(sum(g.values()) for g in sidecar["groups"])
            == census_small.n_rows
        )


class TestLosslessPayload:
    def test_schema_spec_roundtrip(self, census_full_qi):
        spec = schema_to_spec(census_full_qi.schema)
        restored = schema_from_spec(json.loads(json.dumps(spec)))
        assert [a.name for a in restored.qi] == [
            a.name for a in census_full_qi.schema.qi
        ]
        for restored_attr, attr in zip(restored.qi, census_full_qi.schema.qi):
            assert (restored_attr.lo, restored_attr.hi) == (attr.lo, attr.hi)
            if attr.hierarchy is not None:
                assert restored_attr.hierarchy.label_to_rank == (
                    attr.hierarchy.label_to_rank
                )
        assert restored.sensitive.values == (
            census_full_qi.schema.sensitive.values
        )

    def test_generalized_payload_roundtrip(self, census_full_qi):
        published = burel(census_full_qi, 3.0).published
        meta, arrays = publication_payload(published)
        restored = publication_from_payload(
            json.loads(json.dumps(meta)), arrays
        )
        for a, b in zip(published.classes, restored.classes):
            assert np.array_equal(a.rows, b.rows)
            assert a.box == b.box
            assert np.array_equal(a.sa_counts, b.sa_counts)

    def test_fulldomain_boxes_survive(self, census_small):
        """Full-domain boxes come from ladder intervals, not from member
        rows, so they must be stored verbatim."""
        from repro.engine import run

        published = run("fulldomain", census_small, kind="beta", beta=4.0).published
        meta, arrays = publication_payload(published)
        restored = publication_from_payload(meta, arrays)
        assert [ec.box for ec in restored.classes] == [
            ec.box for ec in published.classes
        ]

    def test_save_load_file_roundtrip(self, census_small, tmp_path, rng):
        perturbed = perturb_table(census_small, 4.0, rng=rng)
        path = tmp_path / "p.npz"
        save_publication(perturbed, path)
        restored = load_publication(path)
        assert np.array_equal(restored.source.qi, perturbed.source.qi)
        assert np.array_equal(restored.sa_perturbed, perturbed.sa_perturbed)
        assert np.array_equal(restored.scheme.matrix, perturbed.scheme.matrix)
        assert restored.scheme.c_lm == perturbed.scheme.c_lm

    def test_unknown_format_rejected(self, census_small):
        published = burel(census_small, 3.0).published
        meta, arrays = publication_payload(published)
        meta["format"] = 99
        with pytest.raises(ValueError, match="unsupported payload format"):
            publication_from_payload(meta, arrays)


class TestDisplay:
    def test_describe_interval_numerical(self, patients):
        from repro.dataset import describe_interval

        assert describe_interval(patients.schema, 0, 50, 80) == "Weight=[50, 80]"
        assert describe_interval(patients.schema, 0, 60, 60) == "Weight=60"

    def test_describe_interval_categorical(self, census_full_qi):
        from repro.dataset import describe_interval

        schema = census_full_qi.schema
        g = schema.qi_index("Gender")
        assert describe_interval(schema, g, 0, 1) == "Gender=person"
        assert describe_interval(schema, g, 0, 0) == "Gender=male"

    def test_show_published_limit(self, census_small):
        from repro.dataset import show_published

        published = burel(census_small, 3.0).published
        text = show_published(published, limit=3)
        assert "more" in text
        assert text.count("tuples:") == 3
