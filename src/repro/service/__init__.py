"""Publication store and concurrent query-serving layer.

The paper's end product is a *published* table that recipients query;
this subsystem is the missing serving path on top of the three existing
engines:

* :mod:`repro.service.store` — a content-addressed
  :class:`PublicationStore` persisting full publications losslessly
  (via :mod:`repro.io`) with a JSON provenance sidecar, **gated on
  certification**: a publication is only admitted if the audit layer
  confirms it honors its declared β/t/ℓ requirement;
* :mod:`repro.service.server` — a :class:`QueryService` that
  micro-batches concurrent COUNT requests into
  :class:`~repro.query.workload.EncodedWorkload` batches on the
  batched query engine, with an LRU cache of loaded publications (and
  thereby of their per-table range-bitmap indexes) and thread-pool
  execution.  Answers are bit-identical to calling
  :func:`repro.query.evaluate.evaluate_workload` directly.

Quickstart::

    from repro.service import PublicationStore, QueryService, publish_run

    store = PublicationStore("pubs/")
    result, record = publish_run(
        store, "burel", table, requirement={"beta": 2.0}
    )
    with QueryService(store) as service:
        estimates = service.answer(record.pub_id, workload)
"""

from .server import QueryService
from .store import (
    CertificationError,
    PublicationRecord,
    PublicationStore,
    certify_publication,
    publish_run,
)

__all__ = [
    "CertificationError",
    "PublicationRecord",
    "PublicationStore",
    "QueryService",
    "certify_publication",
    "publish_run",
]
