"""Telemetry overhead baseline: the facade chain with tracing on vs off.

Runs the full custodian chain — anonymize a β sweep, audit, certify +
publish to a store, evaluate a COUNT workload, reload and serve it —
through one :class:`repro.api.Dataset` session (the ``bench_api``
facade configuration), twice per repeat:

* **disabled** — a plain ``Dataset``: telemetry is the shared
  ``NULL_TELEMETRY`` no-op and must cost nothing;
* **enabled** — ``Dataset(telemetry=Telemetry())``: every engine stage,
  facade entry point, and cache touch records spans/metrics.

Three contracts are enforced, not just reported:

* **byte-identity** — publication digests, privacy/risk profiles,
  store ids + audit evidence, error profiles, and served estimates are
  equal across the two modes (telemetry may never steer computation);
* **overhead ceiling** — enabled tracing adds at most ``--floor``
  (default 5%) wall clock over the disabled chain, best-of-``--repeats``
  on both sides;
* **trace round-trip** — the enabled run's Chrome trace file is valid
  JSON whose span tree reconstructs the programmatic snapshot exactly.

A serving leg then pushes the workload through a telemetry-enabled
:class:`repro.service.QueryService` and reports the measured qps and
exact p50/p99 request latency from the registry histograms — the
ROADMAP's serving-trajectory numbers.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_obs.py [--rows 30000] \\
        [--queries 2000] [--trace obs_trace.json] \\
        [--out benchmarks/BENCH_obs.json]

Exits non-zero if any identity diverges, the overhead ceiling is
breached, or the trace round-trip fails.  Standalone script (not
pytest-collected), like the other benches.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from bench_api import clear_global_caches
from repro.api import Dataset
from repro.dataset import CENSUS_QI_ORDER, make_census
from repro.io import publication_digest
from repro.obs import Telemetry, load_trace, span_tree, write_trace
from repro.query import make_workload
from repro.service import PublicationStore, QueryService

BETAS = (1.0, 2.0, 3.0, 4.0)
LAMBDA = 3
THETA = 0.1
QUERY_SEED = 13


def run_chain(table, queries, root, telemetry) -> tuple[dict, float]:
    """One facade chain pass; returns (outputs, wall seconds)."""
    clear_global_caches()
    start = time.perf_counter()
    ds = Dataset(table, telemetry=telemetry)
    store = PublicationStore(root, cache=ds.cache)
    outputs: dict[str, dict] = {}
    runs = ds.sweep([("burel", {"beta": beta}) for beta in BETAS])
    for beta, run in zip(BETAS, runs):
        out: dict = {"digest": publication_digest(run.published)}
        report = run.audit(ordered_emd=True)
        out["privacy"] = dataclasses.asdict(report.privacy)
        out["risk"] = dataclasses.asdict(report.risk)
        record = run.publish(store, requirement={"beta": beta})
        out["pub_id"] = record.pub_id
        out["evidence"] = record.audit
        out["profile"] = dataclasses.asdict(run.evaluate(queries))
        reloaded = store.get(record.pub_id)
        served = ds.evaluate({"served": reloaded}, queries)["served"]
        out["served"] = dataclasses.asdict(served)
        outputs[f"beta={beta}"] = out
    return outputs, time.perf_counter() - start


def serve_leg(table, queries, root, telemetry) -> dict:
    """Serve the workload through a telemetry-enabled QueryService and
    read qps + exact latency percentiles back out of the registry."""
    result_ds = Dataset(table)
    store = PublicationStore(root, cache=result_ds.cache)
    run = result_ds.anonymize("burel", beta=2.0)
    record = run.publish(store, requirement={"beta": 2.0})
    with QueryService(store, workers=2, telemetry=telemetry) as service:
        service.load(record.pub_id)  # admission outside the timed window
        start = time.perf_counter()
        service.answer(record.pub_id, queries)
        seconds = time.perf_counter() - start
    hists = telemetry.metrics.snapshot()["histograms"]
    latency = hists["service.request_seconds"]
    return {
        "queries": len(queries),
        "seconds": round(seconds, 6),
        "qps": round(len(queries) / seconds, 1),
        "request_seconds": {
            key: latency[key] for key in ("count", "mean", "p50", "p90", "p99", "max")
        },
        "queue_wait_p99": hists["service.queue_wait"]["p99"],
        "mean_batch_size": hists["service.batch_size"]["mean"],
    }


def check_trace_round_trip(telemetry, path) -> dict:
    """``--trace`` file contract: valid JSON, span tree reconstructs."""
    payload = write_trace(path, telemetry)
    loaded = load_trace(path)
    if loaded != json.loads(json.dumps(payload)):
        raise SystemExit("regression: trace file is not JSON-stable")
    if span_tree(loaded["spans"]) != telemetry.span_tree():
        raise SystemExit(
            "regression: trace-file span tree diverges from the "
            "programmatic snapshot"
        )
    if len(loaded["traceEvents"]) != len(loaded["spans"]):
        raise SystemExit(
            "regression: Chrome traceEvents do not cover every span"
        )
    return {
        "spans": len(loaded["spans"]),
        "trace_events": len(loaded["traceEvents"]),
        "round_trip": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=30_000)
    parser.add_argument("--queries", type=int, default=2_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--trace", type=Path, default=None,
        help="also write the enabled run's Chrome trace here "
             "(a temp file is used for the round-trip check otherwise)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "BENCH_obs.json",
    )
    parser.add_argument(
        "--floor", type=float, default=0.05,
        help="maximum tolerated enabled-tracing overhead fraction",
    )
    args = parser.parse_args()

    table = make_census(
        args.rows, seed=7, correlation=0.3, qi_names=CENSUS_QI_ORDER
    )
    queries = make_workload(
        table.schema, args.queries, LAMBDA, THETA, rng=QUERY_SEED
    )

    disabled_best = enabled_best = float("inf")
    disabled_outputs = enabled_outputs = None
    telemetry = None
    for _ in range(args.repeats):
        with tempfile.TemporaryDirectory() as root:
            outputs, seconds = run_chain(table, queries, root, None)
        if disabled_outputs is None:
            disabled_outputs = outputs
        elif outputs != disabled_outputs:
            raise SystemExit(
                "regression: disabled chain outputs are not reproducible"
            )
        disabled_best = min(disabled_best, seconds)

        tel = Telemetry(enabled=True)
        with tempfile.TemporaryDirectory() as root:
            outputs, seconds = run_chain(table, queries, root, tel)
        if enabled_outputs is None:
            enabled_outputs = outputs
        enabled_best = min(enabled_best, seconds)
        telemetry = tel

    if enabled_outputs != disabled_outputs:
        diverging = [
            key
            for key in disabled_outputs
            if enabled_outputs.get(key) != disabled_outputs[key]
        ]
        raise SystemExit(
            f"regression: enabled-telemetry chain outputs diverge from "
            f"the disabled chain at {diverging}"
        )

    overhead = enabled_best / disabled_best - 1.0

    span_counts: dict[str, int] = {}
    for record in telemetry.tracer.export():
        span_counts[record["name"]] = span_counts.get(record["name"], 0) + 1

    trace_path = args.trace
    if trace_path is None:
        handle = tempfile.NamedTemporaryFile(
            suffix=".json", delete=False
        )
        handle.close()
        trace_path = Path(handle.name)
    try:
        trace = check_trace_round_trip(telemetry, trace_path)
    finally:
        if args.trace is None:
            trace_path.unlink(missing_ok=True)

    service_tel = Telemetry(enabled=True)
    with tempfile.TemporaryDirectory() as root:
        service = serve_leg(table, queries, root, service_tel)

    report = {
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "rows": args.rows,
        "queries": args.queries,
        "betas": list(BETAS),
        "lambda": LAMBDA,
        "theta": THETA,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "host": platform.platform(),
        "byte_identical": True,
        "chain": {
            "disabled_seconds": round(disabled_best, 6),
            "enabled_seconds": round(enabled_best, 6),
            "overhead_fraction": round(overhead, 4),
            "overhead_floor": args.floor,
        },
        "trace": trace,
        "service": service,
        "telemetry": {
            "span_counts": dict(sorted(span_counts.items())),
            "timed_section_seconds": {
                "count": args.repeats,
                "disabled_best": round(disabled_best, 6),
                "enabled_best": round(enabled_best, 6),
            },
        },
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if overhead > args.floor:
        raise SystemExit(
            f"regression: enabled tracing adds {overhead:.1%} wall clock "
            f"to the facade chain, above the {args.floor:.0%} ceiling"
        )


if __name__ == "__main__":
    main()
