"""Equivalence-class constraints for partition-based anonymization.

The paper's §6 comparators are all "Mondrian + a constraint": a strict
multidimensional partitioner that only performs a split when both halves
still satisfy some privacy predicate.  This module collects those
predicates in one place:

* ``k_anonymity``      — LeFevre et al.'s original condition,
* ``distinct_l_diversity`` — each class holds ≥ ℓ distinct SA values,
* ``t_closeness``      — EMD between class and overall SA distribution,
* ``delta_disclosure`` — Brickell & Shmatikov's two-sided log-ratio bound,
* ``beta_likeness``    — the paper's model (for LMondrian).

Each factory returns an :class:`ECConstraint` whose ``ok(counts, size)``
takes the class's SA histogram and size — the representation Mondrian
maintains incrementally — and answers whether the class is admissible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.model import TOLERANCE, BetaLikeness
from ..metrics.distributions import emd_equal, emd_ordered


@dataclass(frozen=True)
class ECConstraint:
    """A named predicate over candidate equivalence classes."""

    name: str
    ok: Callable[[np.ndarray, int], bool]

    def __call__(self, counts: np.ndarray, size: int) -> bool:
        return self.ok(counts, size)


def k_anonymity(k: int) -> ECConstraint:
    """Each EC must contain at least ``k`` tuples."""
    if k < 1:
        raise ValueError("k must be >= 1")

    def ok(counts: np.ndarray, size: int) -> bool:
        return size >= k

    return ECConstraint(f"{k}-anonymity", ok)


def distinct_l_diversity(l: int) -> ECConstraint:
    """Each EC must contain at least ``l`` distinct SA values."""
    if l < 1:
        raise ValueError("l must be >= 1")

    def ok(counts: np.ndarray, size: int) -> bool:
        return size > 0 and int(np.count_nonzero(counts)) >= l

    return ECConstraint(f"distinct {l}-diversity", ok)


def entropy_l_diversity(l: float) -> ECConstraint:
    """Machanavajjhala et al.'s entropy ℓ-diversity.

    The EC's SA distribution must satisfy ``H(Q) >= ln(l)`` — a
    "well-represented" instantiation stricter than distinct counting.
    """
    if l < 1:
        raise ValueError("l must be >= 1")
    threshold = float(np.log(l))

    def ok(counts: np.ndarray, size: int) -> bool:
        if size == 0:
            return False
        q = counts[counts > 0] / size
        entropy = float(-(q * np.log(q)).sum())
        return entropy >= threshold - TOLERANCE

    return ECConstraint(f"entropy {l}-diversity", ok)


def recursive_cl_diversity(c: float, l: int) -> ECConstraint:
    """Recursive (c, ℓ)-diversity: ``r_1 < c * (r_l + ... + r_m)`` where
    ``r_i`` are the EC's SA counts in descending order."""
    if c <= 0 or l < 2:
        raise ValueError("need c > 0 and l >= 2")

    def ok(counts: np.ndarray, size: int) -> bool:
        if size == 0:
            return False
        ordered_counts = np.sort(counts[counts > 0])[::-1]
        if ordered_counts.size < l:
            return False
        tail = float(ordered_counts[l - 1 :].sum())
        return float(ordered_counts[0]) < c * tail + TOLERANCE

    return ECConstraint(f"recursive ({c}, {l})-diversity", ok)


def t_closeness(
    global_p: np.ndarray, t: float, ordered: bool = False
) -> ECConstraint:
    """EMD between the EC's SA distribution and ``P`` must not exceed ``t``."""
    if t <= 0:
        raise ValueError("t must be positive")
    global_p = np.asarray(global_p, dtype=float)
    distance = emd_ordered if ordered else emd_equal

    def ok(counts: np.ndarray, size: int) -> bool:
        if size == 0:
            return False
        return distance(global_p, counts / size) <= t + TOLERANCE

    return ECConstraint(f"{t}-closeness", ok)


def kl_closeness(global_p: np.ndarray, budget: float) -> ECConstraint:
    """Closeness by Kullback–Leibler divergence (Rebollo-Monedero et al.,
    the [27] variant §2 criticizes): ``KL(Q || P) <= budget`` in bits."""
    if budget <= 0:
        raise ValueError("budget must be positive")
    global_p = np.asarray(global_p, dtype=float)

    def ok(counts: np.ndarray, size: int) -> bool:
        if size == 0:
            return False
        q = counts / size
        mask = q > 0
        if np.any(global_p[mask] <= 0):
            return False
        kl = float(np.sum(q[mask] * np.log2(q[mask] / global_p[mask])))
        return kl <= budget + TOLERANCE

    return ECConstraint(f"KL {budget}-closeness", ok)


def js_closeness(global_p: np.ndarray, budget: float) -> ECConstraint:
    """Closeness by Jensen–Shannon divergence (the [20]/[21] smoothing
    variant §2 criticizes): ``JS(P, Q) <= budget`` in bits."""
    if budget <= 0:
        raise ValueError("budget must be positive")
    global_p = np.asarray(global_p, dtype=float)

    def ok(counts: np.ndarray, size: int) -> bool:
        if size == 0:
            return False
        q = counts / size
        mid = 0.5 * (global_p + q)
        terms = 0.0
        mask_p = global_p > 0
        terms += float(
            np.sum(global_p[mask_p] * np.log2(global_p[mask_p] / mid[mask_p]))
        )
        mask_q = q > 0
        terms += float(np.sum(q[mask_q] * np.log2(q[mask_q] / mid[mask_q])))
        return 0.5 * terms <= budget + TOLERANCE

    return ECConstraint(f"JS {budget}-closeness", ok)


def delta_disclosure(global_p: np.ndarray, delta: float) -> ECConstraint:
    """Brickell & Shmatikov's δ-disclosure-privacy.

    For every SA value present in the table (``p_i > 0``) the EC must
    contain it with frequency ``q_i`` satisfying
    ``e^{-δ} p_i < q_i < e^{δ} p_i`` — in particular every such value
    must occur in every EC (a requirement §3 of the paper criticizes).
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    global_p = np.asarray(global_p, dtype=float)
    present = global_p > 0
    low = np.exp(-delta) * global_p
    high = np.exp(delta) * global_p

    def ok(counts: np.ndarray, size: int) -> bool:
        if size == 0:
            return False
        q = counts / size
        if np.any(q[present] <= 0):
            return False
        inside = (q[present] > low[present] - TOLERANCE) & (
            q[present] < high[present] + TOLERANCE
        )
        return bool(inside.all())

    return ECConstraint(f"{delta:.4g}-disclosure", ok)


def beta_likeness(
    global_p: np.ndarray, beta: float, enhanced: bool = True
) -> ECConstraint:
    """The paper's model as an EC constraint (used by LMondrian)."""
    model = BetaLikeness(beta, enhanced=enhanced)
    global_p = np.asarray(global_p, dtype=float)
    caps = np.asarray(model.threshold(global_p), dtype=float)

    def ok(counts: np.ndarray, size: int) -> bool:
        if size == 0:
            return False
        return bool(np.all(counts / size <= caps + TOLERANCE))

    kind = "enhanced" if enhanced else "basic"
    return ECConstraint(f"{kind} {beta}-likeness", ok)


def delta_for_beta(global_p: np.ndarray, beta: float) -> float:
    """The δ making DMondrian comparable to β-likeness (§6.2).

    The paper sets ``δ = log(1 + min{β, -ln(max_i p_i)})`` so that
    δ-disclosure-privacy implies enhanced β-likeness for every SA value.
    """
    global_p = np.asarray(global_p, dtype=float)
    p_max = float(global_p.max())
    if not 0 < p_max <= 1:
        raise ValueError("invalid distribution")
    return float(np.log(1.0 + min(beta, -np.log(p_max))))
