"""Figure 5: information loss and runtime as functions of β.

BUREL vs LMondrian (Mondrian + β-likeness) vs DMondrian (Mondrian +
δ-disclosure-privacy, δ derived from β).  The paper reports that AIL
falls as β grows for all three, that BUREL has the lowest AIL and
runtime, and that DMondrian — whose two-sided constraint additionally
bounds negative information gain and requires every SA value in every
EC — is the most lossy.
"""

from __future__ import annotations

import argparse

from ..metrics import average_information_loss
from .fig8 import GENERALIZATION_JOBS
from .runner import (
    ExperimentConfig,
    ExperimentResult,
    add_common_args,
    config_from_args,
    run_algorithms,
)

DEFAULT_CONFIG = ExperimentConfig()


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> list[ExperimentResult]:
    """Fig. 5(a) AIL and Fig. 5(b) wall-clock seconds, vs β.

    All runs go through the staged engine in one batch, so per-table
    preprocessing (Hilbert keys, SA distribution) is shared across the
    whole β sweep and timings are the engine's uniform stage timings.
    """
    table = config.table()
    names = [name for name, _, _ in GENERALIZATION_JOBS]
    jobs = [
        (algo, params(beta))
        for beta in config.betas
        for _, algo, params in GENERALIZATION_JOBS
    ]
    results = run_algorithms(table, jobs)
    stride = len(names)
    ail: dict[str, list[float]] = {name: [] for name in names}
    secs: dict[str, list[float]] = {name: [] for name in names}
    for i, _beta in enumerate(config.betas):
        for name, result in zip(
            names, results[stride * i : stride * (i + 1)]
        ):
            ail[name].append(average_information_loss(result.published))
            secs[name].append(result.elapsed_seconds)
    x = list(config.betas)
    return [
        ExperimentResult(
            name="fig5a",
            title="information loss vs beta",
            x_label="beta",
            x_values=x,
            series=ail,
        ),
        ExperimentResult(
            name="fig5b",
            title="wall-clock time vs beta (relative ordering only)",
            x_label="beta",
            x_values=x,
            series=secs,
            notes="Python reimplementation at reduced scale; compare shapes",
        ),
    ]


def main() -> None:  # pragma: no cover - CLI entry point
    parser = argparse.ArgumentParser(description=__doc__)
    add_common_args(parser)
    config = config_from_args(parser.parse_args(), DEFAULT_CONFIG)
    for result in run(config):
        print(result.to_text())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
