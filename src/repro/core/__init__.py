"""The paper's primary contribution: β-likeness, BUREL and perturbation."""

from .bucketize import BucketPartition, dp_partition, greedy_partition
from .burel import BurelResult, burel
from .ectree import (
    ECNode,
    ECTree,
    balanced_halve,
    beta_eligibility,
    bi_split,
    build_ectree,
    naive_halve,
    separating_split,
)
from .model import BetaLikeness, TOLERANCE
from .perturb import PerturbationScheme, PerturbedTable, perturb_table
from .retrieve import HilbertRetriever, RandomRetriever

__all__ = [
    "BetaLikeness",
    "TOLERANCE",
    "BucketPartition",
    "dp_partition",
    "greedy_partition",
    "ECNode",
    "ECTree",
    "balanced_halve",
    "beta_eligibility",
    "bi_split",
    "build_ectree",
    "naive_halve",
    "separating_split",
    "HilbertRetriever",
    "RandomRetriever",
    "BurelResult",
    "burel",
    "PerturbationScheme",
    "PerturbedTable",
    "perturb_table",
]
