"""Batched workload evaluation: batch-vs-scalar byte-equality, the
shared-mask/bitmap machinery, precise caching, and the query-layer
bugfix regressions (anatomy coverage, workload rng contract)."""

import numpy as np
import pytest

from repro.anonymity import BaselinePublication, anatomize
from repro.anonymity.anatomy import AnatomyGroup, AnatomyTable
from repro.core import burel, perturb_table
from repro.dataset import make_census
from repro.query import (
    AnatomyAnswerer,
    BaselineAnswerer,
    CountQuery,
    EncodedWorkload,
    GeneralizedAnswerer,
    PerturbedAnswerer,
    RangeBitmapIndex,
    answer_precise,
    answer_precise_batch,
    batch_estimates,
    evaluate_workload,
    make_answerer,
    make_workload,
    median_relative_error,
    qi_mask,
    workload_error,
)
from repro.query import evaluate as evaluate_module
from repro.query.evaluate import TableMaskEngine, mask_engine


@pytest.fixture(scope="module")
def workload(census_small):
    """A varied randomized workload: mixed λ and θ per block."""
    queries = []
    for seed, lam, theta in ((3, 1, 0.05), (4, 2, 0.1), (5, 3, 0.25)):
        queries.extend(
            make_workload(census_small.schema, 60, lam, theta, rng=seed)
        )
    return queries


class TestEncodedWorkload:
    def test_open_bounds_cover_domains(self, census_small, workload):
        enc = EncodedWorkload.encode(census_small.schema, workload)
        for j, attr in enumerate(census_small.schema.qi):
            unconstrained = ~enc.constrained[:, j]
            assert (enc.qi_lo[unconstrained, j] == attr.lo).all()
            assert (enc.qi_hi[unconstrained, j] == attr.hi).all()

    def test_encode_is_idempotent(self, census_small, workload):
        enc = EncodedWorkload.encode(census_small.schema, workload)
        assert EncodedWorkload.encode(census_small.schema, enc) is enc

    def test_slice_preserves_queries(self, census_small, workload):
        enc = EncodedWorkload.encode(census_small.schema, workload)
        part = enc.slice(10, 25)
        assert part.queries == enc.queries[10:25]
        assert np.array_equal(part.sa_lo, enc.sa_lo[10:25])


class TestPreciseBatch:
    def test_matches_scalar(self, census_small, workload):
        scalar = np.array([answer_precise(census_small, q) for q in workload])
        batch = answer_precise_batch(census_small, workload)
        assert batch.dtype == np.int64
        assert np.array_equal(scalar, batch)

    def test_compare_fallback_matches_index(self, census_small, workload):
        enc = EncodedWorkload.encode(census_small.schema, workload)
        indexed = TableMaskEngine(census_small)
        assert indexed.index is not None
        fallback = TableMaskEngine(census_small, index_budget=0)
        assert fallback.index is None
        assert np.array_equal(indexed.precise(enc), fallback.precise(enc))
        assert np.array_equal(indexed.qi_counts(enc), fallback.qi_counts(enc))
        assert np.array_equal(
            indexed.qi_mask_block(enc, 7, 40),
            fallback.qi_mask_block(enc, 7, 40),
        )

    def test_qi_masks_match_scalar(self, census_small, workload):
        enc = EncodedWorkload.encode(census_small.schema, workload)
        masks = mask_engine(census_small).qi_mask_block(enc, 0, 30)
        for i in range(30):
            assert np.array_equal(masks[i], qi_mask(census_small, workload[i]))

    def test_cache_reused_across_calls(self, census_small, workload):
        first = answer_precise_batch(census_small, workload)
        second = answer_precise_batch(census_small, workload)
        assert second is first  # cached object, not a recomputation
        uncached = answer_precise_batch(census_small, workload, cache=False)
        assert uncached is not first
        assert np.array_equal(uncached, first)

    def test_row_count_not_multiple_of_64(self):
        """Exercises the packed-row padding (77 rows → 3 pad bits + pad
        bytes) end to end."""
        table = make_census(77, seed=3, qi_names=("Age", "Gender"))
        queries = make_workload(table.schema, 40, 2, 0.2, rng=9)
        scalar = np.array([answer_precise(table, q) for q in queries])
        assert np.array_equal(scalar, answer_precise_batch(table, queries))

    def test_full_domain_query_counts_everything(self, census_small):
        query = CountQuery(qi_ranges=(), sa_range=(0, 49))
        batch = answer_precise_batch(census_small, [query], cache=False)
        assert batch.tolist() == [census_small.n_rows]


class TestBatchAnswerers:
    """Every batch path must be bit-identical to its scalar answerer."""

    def test_generalized(self, census_small, workload):
        answerer = GeneralizedAnswerer(burel(census_small, 3.0).published)
        scalar = np.array([answerer(q) for q in workload])
        assert np.array_equal(scalar, answerer.batch(workload))
        # tiny chunks exercise the chunk boundary logic
        assert np.array_equal(scalar, answerer.batch(workload, chunk=7))

    def test_generalized_no_qi_predicates(self, census_small):
        answerer = GeneralizedAnswerer(burel(census_small, 3.0).published)
        query = CountQuery(qi_ranges=(), sa_range=(5, 20))
        assert answerer.batch([query])[0] == answerer(query)

    def test_perturbed(self, census_small, workload):
        published = perturb_table(
            census_small, 4.0, rng=np.random.default_rng(2)
        )
        answerer = PerturbedAnswerer(published)
        scalar = np.array([answerer(q) for q in workload])
        assert np.array_equal(scalar, answerer.batch(workload))

    def test_anatomy(self, census_small, workload):
        published = anatomize(census_small, 4, rng=np.random.default_rng(1))
        answerer = AnatomyAnswerer(published)
        scalar = np.array([answerer(q) for q in workload])
        assert np.array_equal(scalar, answerer.batch(workload))

    def test_baseline(self, census_small, workload):
        answerer = BaselineAnswerer(BaselinePublication(census_small))
        scalar = np.array([answerer(q) for q in workload])
        assert np.array_equal(scalar, answerer.batch(workload))

    def test_batch_with_shared_masks(self, census_small, workload):
        """batch_estimates routes shared masks; results stay identical."""
        publications = {
            "perturbed": perturb_table(
                census_small, 4.0, rng=np.random.default_rng(2)
            ),
            "anatomy": anatomize(census_small, 4, rng=np.random.default_rng(1)),
            "baseline": BaselinePublication(census_small),
            "burel": burel(census_small, 3.0).published,
        }
        estimates = batch_estimates(census_small, publications, workload)
        for name, published in publications.items():
            answerer = make_answerer(published)
            scalar = np.array([answerer(q) for q in workload])
            assert np.array_equal(scalar, estimates[name]), name

    def test_rowwise_sum_matches_1d_sum(self, rng):
        """The (chunk, E).sum(axis=1) kernel must reduce each row exactly
        like the scalar 1-D sum — the byte-equality guarantee rests on
        it.  Adversarial magnitudes make any reassociation visible."""
        data = rng.standard_normal((64, 1037)) * np.exp(
            rng.uniform(-30, 30, size=(64, 1037))
        )
        rowwise = data.sum(axis=1)
        scalar = np.array([data[i].sum() for i in range(data.shape[0])])
        assert np.array_equal(rowwise, scalar)


class TestEvaluateWorkload:
    def test_profiles_match_scalar_medians(self, census_small, workload):
        publications = {
            "burel": burel(census_small, 3.0).published,
            "baseline": BaselinePublication(census_small),
        }
        profiles = evaluate_workload(census_small, publications, workload)
        precise = np.array(
            [answer_precise(census_small, q) for q in workload]
        )
        for name, published in publications.items():
            answerer = make_answerer(published)
            scalar = median_relative_error(
                precise, np.array([answerer(q) for q in workload])
            )
            assert profiles[name].median == scalar

    def test_accepts_prebuilt_answerers(self, census_small, workload):
        answerer = GeneralizedAnswerer(burel(census_small, 3.0).published)
        profiles = evaluate_workload(
            census_small, {"gen": answerer}, workload
        )
        assert profiles["gen"].n_queries <= len(workload)

    def test_rejects_foreign_table(self, census_small, workload):
        other = make_census(500, seed=11, qi_names=("Age", "Gender"))
        publication = BaselinePublication(other)
        with pytest.raises(ValueError, match="different table"):
            evaluate_workload(census_small, {"b": publication}, workload)

    def test_workload_error_batch_and_scalar_paths_agree(
        self, census_small, workload
    ):
        answerer = GeneralizedAnswerer(burel(census_small, 3.0).published)
        batched = workload_error(census_small, workload, answerer)
        plain = workload_error(
            census_small, workload, lambda q: answerer(q)
        )
        assert batched == plain

    def test_unknown_publication_type_raises(self, census_small, workload):
        with pytest.raises(TypeError, match="no answerer"):
            evaluate_workload(census_small, {"x": object()}, workload)


class TestRangeBitmapIndex:
    def test_estimate_matches_reality(self, census_small):
        index = RangeBitmapIndex(census_small)
        actual = sum(
            le.nbytes + ge.nbytes for (le, ge), _ in index._qi
        ) + sum(b.nbytes for b in index._sa)
        assert actual <= RangeBitmapIndex.estimate_bytes(census_small)

    def test_unpack_roundtrip(self, census_small, workload):
        enc = EncodedWorkload.encode(census_small.schema, workload)
        index = RangeBitmapIndex(census_small)
        packed = index.qi_bits(enc, 0, 16)
        masks = index.unpack(packed)
        assert masks.shape == (16, census_small.n_rows)
        repacked = np.packbits(masks, axis=1)
        assert np.array_equal(repacked, packed[:, : repacked.shape[1]])


class TestAnatomyCoverageRegression:
    def test_uncovered_rows_raise(self):
        """Rows outside every group used to carry garbage group ids and
        silently corrupt estimates; they must raise instead."""
        table = make_census(100, seed=2, qi_names=("Age", "Gender"))
        groups = (
            AnatomyGroup(
                rows=np.arange(60, dtype=np.int64),
                sa_counts=np.bincount(
                    table.sa[:60], minlength=table.sa_cardinality
                ),
            ),
        )
        published = AnatomyTable(source=table, groups=groups, l=2)
        with pytest.raises(ValueError, match="40 of 100 rows"):
            AnatomyAnswerer(published)

    def test_full_coverage_still_accepted(self, census_small):
        published = anatomize(census_small, 4, rng=np.random.default_rng(1))
        answerer = AnatomyAnswerer(published)
        assert (answerer.group_of >= 0).all()


class TestWorkloadRngContract:
    def test_int_seed_matches_generator(self, census_small):
        by_seed = make_workload(census_small.schema, 10, 2, 0.1, rng=3)
        by_generator = make_workload(
            census_small.schema, 10, 2, 0.1, rng=np.random.default_rng(3)
        )
        assert by_seed == by_generator

    def test_default_is_documented_seed_zero(self, census_small):
        assert make_workload(census_small.schema, 10, 2, 0.1) == make_workload(
            census_small.schema, 10, 2, 0.1, rng=0
        )

    def test_distinct_seeds_differ(self, census_small):
        assert make_workload(
            census_small.schema, 10, 2, 0.1, rng=1
        ) != make_workload(census_small.schema, 10, 2, 0.1, rng=2)

    def test_none_is_rejected(self, census_small):
        with pytest.raises(TypeError, match="int seed or a numpy Generator"):
            make_workload(census_small.schema, 10, 2, 0.1, rng=None)


class TestCacheHygiene:
    def test_precise_cache_is_bounded(self, census_small):
        per_table = evaluate_module._PRECISE.setdefault(census_small, {})
        per_table.clear()
        for seed in range(evaluate_module._PRECISE_PER_TABLE + 3):
            queries = make_workload(census_small.schema, 5, 1, 0.1, rng=seed)
            answer_precise_batch(census_small, queries)
        assert len(per_table) <= evaluate_module._PRECISE_PER_TABLE

    def test_engine_cache_frees_with_table(self):
        """The engine must not hold a strong reference to its table —
        that would pin the WeakKeyDictionary key (and the bitmap index)
        for the process lifetime."""
        import gc
        import weakref

        table = make_census(200, seed=5, qi_names=("Age", "Gender"))
        mask_engine(table)
        assert table in evaluate_module._ENGINES
        probe = weakref.ref(table)
        del table
        gc.collect()
        assert probe() is None

    def test_duplicate_dimension_predicates_rejected(self, census_small):
        """The scalar path intersects repeated predicates; the dense
        encoding cannot represent that, so it must refuse."""
        query = CountQuery(
            qi_ranges=((0, (10, 20)), (0, (15, 30))), sa_range=(0, 10)
        )
        with pytest.raises(ValueError, match="ascending dimension order"):
            answer_precise_batch(census_small, [query], cache=False)

    def test_unsorted_dimension_predicates_rejected(self, census_small):
        """Scalar fraction products follow tuple order; out-of-order
        predicates would associate float products differently."""
        query = CountQuery(
            qi_ranges=((2, (0, 5)), (0, (10, 20))), sa_range=(0, 10)
        )
        with pytest.raises(ValueError, match="ascending dimension order"):
            answer_precise_batch(census_small, [query], cache=False)

    def test_cached_precise_answers_are_immutable(self, census_small):
        queries = make_workload(census_small.schema, 8, 1, 0.1, rng=77)
        cached = answer_precise_batch(census_small, queries)
        with pytest.raises(ValueError, match="read-only"):
            cached[0] = 0
