"""Extensions the paper sketches in §3 and §7, implemented.

* Two-sided β-likeness (negative-gain control, §3/§7).
* Semantic-group β-likeness over SA hierarchies (§7).
* (β, w)-proximity-likeness for ordinal SA domains (§7 future work).
"""

from .grouped import SAGrouping, grouped_burel, measured_group_beta
from .proximity import (
    measured_proximity_beta,
    p_mondrian,
    proximity_caps,
    proximity_constraint,
)
from .two_sided import (
    TwoSidedBetaLikeness,
    measured_negative_beta,
    two_sided_constraint,
)

__all__ = [
    "TwoSidedBetaLikeness",
    "measured_negative_beta",
    "two_sided_constraint",
    "SAGrouping",
    "grouped_burel",
    "measured_group_beta",
    "measured_proximity_beta",
    "p_mondrian",
    "proximity_caps",
    "proximity_constraint",
]
