"""Tests for the Mondrian family and its constraints (§6 comparators)."""

import numpy as np
import pytest

from repro.anonymity import (
    beta_likeness,
    d_mondrian,
    delta_disclosure,
    delta_for_beta,
    distinct_l_diversity,
    k_anonymity,
    k_mondrian,
    l_mondrian,
    mondrian,
    t_closeness,
    t_mondrian,
)
from repro.metrics import (
    average_information_loss,
    measured_beta,
    measured_delta,
    measured_l,
    measured_t,
)


class TestConstraints:
    def test_k_anonymity(self):
        c = k_anonymity(5)
        assert c(np.array([3, 3]), 6)
        assert not c(np.array([2, 2]), 4)
        with pytest.raises(ValueError):
            k_anonymity(0)

    def test_distinct_l_diversity(self):
        c = distinct_l_diversity(3)
        assert c(np.array([1, 1, 1, 0]), 3)
        assert not c(np.array([3, 1, 0, 0]), 4)

    def test_t_closeness(self):
        p = np.array([0.5, 0.5])
        c = t_closeness(p, 0.2)
        assert c(np.array([6, 4]), 10)       # EMD 0.1
        assert not c(np.array([9, 1]), 10)   # EMD 0.4

    def test_delta_disclosure_requires_full_support(self):
        p = np.array([0.5, 0.5])
        c = delta_disclosure(p, 1.0)
        assert not c(np.array([10, 0]), 10)
        assert c(np.array([5, 5]), 10)

    def test_beta_likeness_constraint(self):
        p = np.array([0.9, 0.1])
        c = beta_likeness(p, 1.0)
        assert c(np.array([9, 1]), 10)
        assert not c(np.array([5, 5]), 10)  # v2 gain = 4 > 1

    def test_delta_for_beta_formula(self):
        p = np.array([0.2, 0.8])
        delta = delta_for_beta(p, 3.0)
        expected = np.log(1 + min(3.0, -np.log(0.8)))
        assert delta == pytest.approx(expected)


class TestMondrianCore:
    def test_k_anonymity_guarantee(self, census_small):
        result = k_mondrian(census_small, 25)
        assert min(ec.size for ec in result.published) >= 25

    def test_partition_covers_table(self, census_small):
        result = k_mondrian(census_small, 25)
        rows = np.concatenate([ec.rows for ec in result.published])
        assert len(np.unique(rows)) == census_small.n_rows

    def test_boxes_disjoint(self, census_small):
        """Strict Mondrian produces non-overlapping boxes."""
        result = k_mondrian(census_small, 100)
        boxes = [ec.box for ec in result.published]
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                overlap = all(
                    min(boxes[i][d][1], boxes[j][d][1])
                    >= max(boxes[i][d][0], boxes[j][d][0])
                    for d in range(len(boxes[i]))
                )
                assert not overlap

    def test_smaller_k_gives_more_classes(self, census_small):
        big = k_mondrian(census_small, 200)
        small = k_mondrian(census_small, 25)
        assert len(small.published) >= len(big.published)

    def test_try_all_dims_never_worse(self, census_small):
        stock = l_mondrian(census_small, 2.0)
        strong = l_mondrian(census_small, 2.0, try_all_dims=True)
        assert average_information_loss(
            strong.published
        ) <= average_information_loss(stock.published) + 1e-12

    def test_empty_table_rejected(self, census_small):
        empty = census_small.subset(np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            mondrian(empty, k_anonymity(2))


class TestPaperComparators:
    def test_l_mondrian_satisfies_beta_likeness(self, census_small):
        for beta in (2.0, 4.0):
            result = l_mondrian(census_small, beta)
            assert measured_beta(result.published) <= beta + 1e-9

    def test_d_mondrian_satisfies_beta_likeness(self, census_small):
        """The §6.2 derivation: δ-disclosure with delta_for_beta implies
        β-likeness."""
        result = d_mondrian(census_small, 3.0)
        assert measured_beta(result.published) <= 3.0 + 1e-9

    def test_d_mondrian_delta_bound(self, census_small):
        result = d_mondrian(census_small, 3.0)
        delta = delta_for_beta(census_small.sa_distribution(), 3.0)
        assert measured_delta(result.published) <= delta + 1e-9

    def test_d_mondrian_stricter_than_l_mondrian(self, census_small):
        """DMondrian's two-sided constraint yields at least as much
        information loss (the paper's Fig. 5 ordering)."""
        lm = l_mondrian(census_small, 3.0)
        dm = d_mondrian(census_small, 3.0)
        assert average_information_loss(
            dm.published
        ) >= average_information_loss(lm.published) - 1e-12

    def test_t_mondrian_satisfies_t(self, census_small):
        for t in (0.15, 0.3):
            result = t_mondrian(census_small, t)
            assert measured_t(result.published) <= t + 1e-9

    def test_t_mondrian_ordered_mode(self, census_small):
        result = t_mondrian(census_small, 0.1, ordered=True)
        assert measured_t(result.published, ordered=True) <= 0.1 + 1e-9

    def test_distinct_l_via_mondrian(self, census_small):
        result = mondrian(census_small, distinct_l_diversity(10))
        assert measured_l(result.published) >= 10
