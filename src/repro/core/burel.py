"""BUREL: BUcketization and REallocation for β-Likeness (Section 4.5).

The end-to-end generalization algorithm of the paper:

1. **Bucketization** — ``DPpartition`` groups SA values into the fewest
   buckets compatible with Lemma 2.
2. **Reallocation** — ``biSplit`` builds the ECTree and fixes how many
   tuples each EC draws from each bucket (Theorem 1 eligibility).
3. **Materialization** — a retriever (Hilbert-curve by default) picks
   concrete, QI-space-local tuples for each EC.

The output satisfies (enhanced) β-likeness *by construction*: every EC's
per-bucket share is capped by ``f(p_{ℓ_j})``, which upper-bounds every
member value's in-EC frequency (Theorem 1's proof).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._deprecation import deprecated_entry_point
from ..dataset.published import GeneralizedTable
from ..dataset.table import Table
from .bucketize import BucketPartition
from .model import BetaLikeness


@dataclass
class BurelResult:
    """Everything BUREL produced, for inspection and experiments."""

    published: GeneralizedTable
    partition: BucketPartition
    specs: list[np.ndarray]
    model: BetaLikeness
    elapsed_seconds: float


def _burel(
    table: Table,
    beta: float,
    enhanced: bool = True,
    bucketizer: str = "dp",
    retriever: str = "hilbert",
    margin: float = 0.5,
    balanced_split: bool = True,
    separate: bool = True,
    rng: np.random.Generator | None = None,
) -> BurelResult:
    """Anonymize ``table`` to satisfy (enhanced) β-likeness.

    Args:
        table: The microdata to publish.
        beta: The β threshold (> 0).
        enhanced: Use enhanced β-likeness (Definition 3; the default) or
            the basic model (Definition 2).
        bucketizer: ``"dp"`` for the paper's DPpartition, ``"greedy"``
            for the first-fit ablation.
        retriever: ``"hilbert"`` for the paper's locality heuristic,
            ``"random"`` for the no-locality ablation.
        margin: Bucketization saturation margin (see
            :func:`~repro.core.bucketize.dp_partition`).  The default 0.5
            keeps 50% headroom under each bucket's cap so the ECTree can
            split deeply (calibrated in EXPERIMENTS.md; the ablation
            bench sweeps it); pass 0 for the paper-verbatim condition.
        balanced_split: Distribute rounding remainders across ECTree
            children (default) instead of the paper's all-to-the-right
            rule; see :func:`~repro.core.ectree.balanced_halve`.
        separate: Allow separating splits that quarantine cap-constrained
            buckets when halving stalls (default); see
            :func:`~repro.core.ectree.separating_split`.  Disable
            together with ``balanced_split`` and ``margin=0`` for the
            paper-verbatim pipeline.
        rng: Optional generator; with the Hilbert retriever it randomizes
            seed tuples as the paper describes, with the random retriever
            it shuffles draws.  ``None`` means deterministic for both
            retrievers (sweep / row-order draws respectively).

    Returns:
        A :class:`BurelResult`; ``result.published`` is the
        :class:`~repro.dataset.published.GeneralizedTable`.

    This wrapper routes through the staged engine (``repro.engine``),
    which is the single implementation path; it keeps the historical
    call shape and result type.
    """
    from ..engine import run as engine_run

    result = engine_run(
        "burel",
        table,
        rng=rng,
        beta=beta,
        enhanced=enhanced,
        bucketizer=bucketizer,
        retriever=retriever,
        margin=margin,
        balanced_split=balanced_split,
        separate=separate,
    )
    return BurelResult(
        published=result.published,
        partition=result.provenance["partition"],
        specs=result.provenance["specs"],
        model=result.provenance["model"],
        elapsed_seconds=result.elapsed_seconds,
    )


burel = deprecated_entry_point(
    _burel,
    "repro.burel()",
    'repro.api.Dataset.anonymize("burel", beta=...)',
)
