"""Section 7's table: BUREL output re-measured under t-closeness and
ℓ-diversity.

For β ∈ {1..5} the paper reports the worst-case and average closeness
(t, Avg t) and diversity (ℓ, Avg ℓ) of the β-likeness publications,
arguing that for reasonable β the distinct diversity stays at levels
(ℓ ≥ 6) where the deFinetti attack's success rate is known to be low.

Closeness uses the ordered-distance EMD (the salary-class domain is
ordinal), matching the magnitude of the paper's reported t values.
"""

from __future__ import annotations

import argparse

from .runner import (
    ExperimentConfig,
    ExperimentResult,
    add_common_args,
    config_from_args,
)

DEFAULT_CONFIG = ExperimentConfig()


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """The §7 table: β → (t, Avg t, ℓ, Avg ℓ).

    The β sweep runs as one :meth:`repro.api.Dataset.sweep` batch
    sharing per-table preprocessing, and the measurement side is one
    :meth:`~repro.api.Dataset.audit` batch: all four reported columns
    read off each publication's cached view.
    """
    ds = config.dataset()
    runs = ds.sweep([("burel", {"beta": beta}) for beta in config.betas])
    # Keyed by sweep position, not by β: a config with repeated betas
    # must keep one series entry per sweep point.
    publications = {
        f"{i}:beta={beta}": run.published
        for i, (beta, run) in enumerate(zip(config.betas, runs))
    }
    reports = ds.audit(publications, ordered_emd=True)
    series: dict[str, list[float]] = {"t": [], "Avg t": [], "l": [], "Avg l": []}
    for name in publications:
        profile = reports[name].privacy
        series["t"].append(profile.t)
        series["Avg t"].append(profile.avg_t)
        series["l"].append(profile.l)
        series["Avg l"].append(profile.avg_l)
    return ExperimentResult(
        name="table7",
        title="closeness and diversity achieved by BUREL (Section 7 table)",
        x_label="beta",
        x_values=list(config.betas),
        series=series,
    )


def main() -> None:  # pragma: no cover - CLI entry point
    parser = argparse.ArgumentParser(description=__doc__)
    add_common_args(parser)
    config = config_from_args(parser.parse_args(), DEFAULT_CONFIG)
    print(run(config).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
