"""Tests for publication serialization."""

import json

import numpy as np
import pytest

from repro.core import burel, perturb_table
from repro.io import (
    generalized_to_rows,
    read_csv_rows,
    read_perturbation_sidecar,
    write_generalized_csv,
    write_perturbed_csv,
)


class TestGeneralizedExport:
    def test_one_row_per_tuple(self, patients):
        published = burel(patients, 1.0, margin=0.0).published
        rows = generalized_to_rows(published)
        assert len(rows) == patients.n_rows

    def test_columns(self, patients):
        published = burel(patients, 1.0, margin=0.0).published
        row = generalized_to_rows(published)[0]
        assert set(row) == {"ec", "Weight", "Age", "Disease"}

    def test_sa_values_verbatim(self, patients):
        published = burel(patients, 1.0, margin=0.0).published
        rows = generalized_to_rows(published)
        diseases = sorted(r["Disease"] for r in rows)
        assert diseases == sorted(patients.schema.sensitive.values)

    def test_csv_roundtrip(self, patients, tmp_path):
        published = burel(patients, 1.0, margin=0.0).published
        path = tmp_path / "published.csv"
        write_generalized_csv(published, path)
        rows = read_csv_rows(path)
        assert len(rows) == 6
        assert rows[0]["ec"] == "0"

    def test_census_export(self, census_small, tmp_path):
        published = burel(census_small, 3.0).published
        path = tmp_path / "census.csv"
        write_generalized_csv(published, path)
        rows = read_csv_rows(path)
        assert len(rows) == census_small.n_rows
        # Generalized gender cells are hierarchy node labels.
        assert any(
            r["Gender"] in {"male", "female", "person"} for r in rows
        )


class TestPerturbedExport:
    def test_csv_and_sidecar(self, census_small, tmp_path, rng):
        perturbed = perturb_table(census_small, 4.0, rng=rng)
        path = tmp_path / "perturbed.csv"
        write_perturbed_csv(perturbed, path)
        rows = read_csv_rows(path)
        assert len(rows) == census_small.n_rows
        sidecar = read_perturbation_sidecar(tmp_path / "perturbed.json")
        assert sidecar["transition_matrix"].shape == (50, 50)
        assert sidecar["overall_distribution"].sum() == pytest.approx(1.0)

    def test_sidecar_matrix_matches_scheme(self, census_small, tmp_path, rng):
        perturbed = perturb_table(census_small, 4.0, rng=rng)
        write_perturbed_csv(perturbed, tmp_path / "p.csv")
        sidecar = read_perturbation_sidecar(tmp_path / "p.json")
        assert np.allclose(
            sidecar["transition_matrix"], perturbed.scheme.matrix
        )

    def test_explicit_sidecar_path(self, census_small, tmp_path, rng):
        perturbed = perturb_table(census_small, 4.0, rng=rng)
        write_perturbed_csv(
            perturbed, tmp_path / "p.csv", sidecar=tmp_path / "meta.json"
        )
        assert (tmp_path / "meta.json").exists()
        payload = json.loads((tmp_path / "meta.json").read_text())
        assert payload["sensitive_attribute"] == "SalaryClass"


class TestDisplay:
    def test_describe_interval_numerical(self, patients):
        from repro.dataset import describe_interval

        assert describe_interval(patients.schema, 0, 50, 80) == "Weight=[50, 80]"
        assert describe_interval(patients.schema, 0, 60, 60) == "Weight=60"

    def test_describe_interval_categorical(self, census_full_qi):
        from repro.dataset import describe_interval

        schema = census_full_qi.schema
        g = schema.qi_index("Gender")
        assert describe_interval(schema, g, 0, 1) == "Gender=person"
        assert describe_interval(schema, g, 0, 0) == "Gender=male"

    def test_show_published_limit(self, census_small):
        from repro.dataset import show_published

        published = burel(census_small, 3.0).published
        text = show_published(published, limit=3)
        assert "more" in text
        assert text.count("tuples:") == 3
