"""Query estimators over the three publication formats (§5, §6.2, §6.3).

* **Generalized tables** (BUREL, Mondrian, SABRE): tuples inside each EC
  are assumed uniformly distributed over the EC's bounding box; an EC
  contributes its SA-matching tuple count scaled by the fractional
  overlap of the box with the query region (the standard estimator the
  paper uses in §6.2).
* **Perturbed tables** (§5): QI predicates filter exact QI values; the
  observed SA histogram ``E'`` of the filtered set is mapped back
  through the published transition matrix, ``N' = PM⁻¹ E'``, and the
  estimate sums ``N'`` over the SA range.
* **Baseline** (§6.3): QI predicates filter exact QI values; the SA
  predicate contributes the overall distribution mass of its range.

``median_relative_error`` reproduces the paper's workload metric:
``|est - prec| / prec``, with zero-``prec`` queries dropped.
"""

from __future__ import annotations

import numpy as np

from ..anonymity.anatomy import BaselinePublication
from ..core.perturb import PerturbedTable
from ..dataset.published import EquivalenceClass, GeneralizedTable
from ..dataset.schema import Schema
from .workload import CountQuery, EncodedWorkload, qi_mask


def _box_overlap_fraction(
    schema: Schema, ec: EquivalenceClass, query: CountQuery
) -> float:
    """Fraction of the EC box inside the query's QI region.

    Each queried dimension contributes ``|box ∩ range| / |box|`` under
    the in-box uniformity assumption; unqueried dimensions contribute 1.
    All intervals are inclusive integer ranges.
    """
    fraction = 1.0
    for dim, (q_lo, q_hi) in query.qi_ranges:
        b_lo, b_hi = ec.box[dim]
        overlap = min(b_hi, q_hi) - max(b_lo, q_lo) + 1
        if overlap <= 0:
            return 0.0
        fraction *= overlap / (b_hi - b_lo + 1)
    return fraction


def answer_generalized(
    published: GeneralizedTable, query: CountQuery
) -> float:
    """Estimate a COUNT query on a generalized publication."""
    lo, hi = query.sa_range
    estimate = 0.0
    for ec in published:
        sa_matches = int(ec.sa_counts[lo : hi + 1].sum())
        if sa_matches == 0:
            continue
        fraction = _box_overlap_fraction(published.schema, ec, query)
        if fraction > 0.0:
            estimate += fraction * sa_matches
    return float(estimate)


def answer_perturbed(published: PerturbedTable, query: CountQuery) -> float:
    """Estimate a COUNT query on a perturbed publication (§5).

    Reconstruction can return (small) negative per-value counts — an
    artefact of inverting noisy observations the paper keeps, so no
    clipping is applied.
    """
    mask = qi_mask(published.source, query)
    observed = np.bincount(
        published.sa_perturbed[mask],
        minlength=published.source.sa_cardinality,
    )
    reconstructed = published.scheme.reconstruct(observed)
    lo, hi = query.sa_range
    return float(reconstructed[lo : hi + 1].sum())


def answer_baseline(published: BaselinePublication, query: CountQuery) -> float:
    """Estimate a COUNT query on the §6.3 Baseline publication."""
    mask = qi_mask(published.source, query)
    probs = published.global_distribution()
    lo, hi = query.sa_range
    return float(mask.sum() * probs[lo : hi + 1].sum())


class GeneralizedAnswerer:
    """Vectorized batch estimator over a generalized publication.

    Precomputes per-EC box bounds and SA prefix sums once, so answering a
    query costs a handful of length-``|ECs|`` numpy operations instead of
    a Python loop — experiment sweeps answer millions of (query, EC)
    pairs.
    """

    def __init__(self, published: GeneralizedTable):
        self.published = published
        boxes = np.array([ec.box for ec in published], dtype=np.int64)
        self.box_lo = boxes[:, :, 0]  # (E, d)
        self.box_hi = boxes[:, :, 1]
        counts = np.stack([ec.sa_counts for ec in published])  # (E, m)
        self.sa_prefix = np.concatenate(
            [np.zeros((counts.shape[0], 1), dtype=np.int64),
             np.cumsum(counts, axis=1)],
            axis=1,
        )

    def __call__(self, query: CountQuery) -> float:
        lo, hi = query.sa_range
        sa_matches = (
            self.sa_prefix[:, hi + 1] - self.sa_prefix[:, lo]
        ).astype(float)
        fraction = np.ones(self.box_lo.shape[0])
        for dim, (q_lo, q_hi) in query.qi_ranges:
            b_lo = self.box_lo[:, dim]
            b_hi = self.box_hi[:, dim]
            overlap = np.minimum(b_hi, q_hi) - np.maximum(b_lo, q_lo) + 1
            fraction *= np.maximum(overlap, 0) / (b_hi - b_lo + 1)
        return float((fraction * sa_matches).sum())

    def batch(self, queries, chunk: int = 64) -> np.ndarray:
        """Answer a whole workload in chunked (queries × ECs) passes.

        Per query this performs exactly the scalar ``__call__`` operation
        sequence (per-dimension overlap products in ascending dimension
        order, then a row-wise sum over ECs), so estimates are bit-for-bit
        identical — only the Python-level per-query dispatch is amortized.
        Queries are grouped by which dimensions they constrain, so each
        kernel pass touches exactly its group's predicate dimensions with
        no per-row masking.

        Args:
            queries: Sequence of :class:`CountQuery`, or an
                :class:`~repro.query.workload.EncodedWorkload`.
            chunk: Queries per (chunk × ECs) block; small chunks keep the
                working set inside the CPU cache.

        Returns:
            ``(Q,)`` float64 estimates, in workload order.
        """
        enc = EncodedWorkload.encode(self.published.schema, queries)
        q_n = enc.n_queries
        out = np.empty(q_n)
        if q_n == 0:
            return out
        n_classes = self.box_lo.shape[0]
        sa_prefix_t = np.ascontiguousarray(self.sa_prefix.T)  # (m + 1, E)
        # int32 bound arithmetic is ~2x faster (wider SIMD) and exact for
        # any domain below 2^30 — the results, including the float64
        # division, are bit-identical to the int64 path.
        bounds = (self.box_lo, self.box_hi, enc.qi_lo, enc.qi_hi)
        small = all(
            a.size == 0 or max(abs(int(a.min())), abs(int(a.max()))) < 2**30
            for a in bounds
        )
        dtype = np.int32 if small else np.int64
        box_lo = self.box_lo.astype(dtype, copy=False)
        box_hi = self.box_hi.astype(dtype, copy=False)
        qi_lo = enc.qi_lo.astype(dtype, copy=False)
        qi_hi = enc.qi_hi.astype(dtype, copy=False)
        patterns, inverse = np.unique(
            enc.constrained, axis=0, return_inverse=True
        )
        for p, pattern in enumerate(patterns):
            index = np.flatnonzero(inverse == p)
            dims = np.flatnonzero(pattern)
            for start in range(0, index.size, chunk):
                sel = index[start : start + chunk]
                fraction = None
                for dim in dims:
                    b_lo = box_lo[:, dim]
                    b_hi = box_hi[:, dim]
                    q_lo = qi_lo[sel, dim][:, None]
                    q_hi = qi_hi[sel, dim][:, None]
                    overlap = (
                        np.minimum(b_hi[None, :], q_hi)
                        - np.maximum(b_lo[None, :], q_lo)
                        + 1
                    )
                    term = np.maximum(overlap, 0) / (b_hi - b_lo + 1)
                    if fraction is None:  # 1.0 * term == term, bit-exact
                        fraction = term
                    else:
                        fraction *= term
                if fraction is None:
                    fraction = np.ones((sel.size, n_classes))
                sa_matches = (
                    sa_prefix_t[enc.sa_hi[sel] + 1]
                    - sa_prefix_t[enc.sa_lo[sel]]
                ).astype(float)
                out[sel] = (fraction * sa_matches).sum(axis=1)
        return out


class PerturbedAnswerer:
    """Batch estimator over a perturbed publication.

    Summing the reconstruction ``PM⁻¹ E'`` over an SA range is a linear
    functional of the observed histogram ``E'``, so it folds into
    per-value weights once per SA range:
    ``est = (w · E')`` with ``w = (PM^-T · indicator(R_SA))``.  The
    estimate is computed in exactly that histogram form — an order-free
    function of integer per-value counts — so any histogram source
    (per-query masks, or a precomputed
    :class:`~repro.query.cube.PrefixSumCube` value cube) yields
    bit-identical results.
    """

    def __init__(self, published: PerturbedTable):
        self.published = published
        self._weights_cache: dict[tuple[int, int], np.ndarray] = {}

    def _weights(self, sa_range: tuple[int, int]) -> np.ndarray:
        if sa_range not in self._weights_cache:
            scheme = self.published.scheme
            m_full = self.published.source.sa_cardinality
            lo, hi = sa_range
            indicator = np.zeros(m_full)
            indicator[lo : hi + 1] = 1.0
            ind_present = indicator[scheme.domain]
            if scheme.m == 1:
                w_present = ind_present
            else:
                w_present = np.linalg.solve(scheme.matrix.T, ind_present)
            weights = np.zeros(m_full)
            weights[scheme.domain] = w_present
            self._weights_cache[sa_range] = weights
        return self._weights_cache[sa_range]

    def __call__(self, query: CountQuery) -> float:
        mask = qi_mask(self.published.source, query)
        observed = np.bincount(
            self.published.sa_perturbed[mask],
            minlength=self.published.source.sa_cardinality,
        )
        weights = self._weights(query.sa_range)
        return float((weights * observed).sum())

    def weight_rows(self, queries) -> np.ndarray:
        """``(Q, m)`` per-query weight vectors (cached per SA range)."""
        if isinstance(queries, EncodedWorkload):
            queries = queries.queries
        m = self.published.source.sa_cardinality
        out = np.empty((len(queries), m))
        for i, query in enumerate(queries):
            out[i] = self._weights(query.sa_range)
        return out

    def batch(
        self,
        queries,
        masks: np.ndarray | None = None,
        histograms: np.ndarray | None = None,
    ) -> np.ndarray:
        """Answer a workload against masks or precomputed histograms.

        Args:
            queries: Sequence of :class:`CountQuery` or an
                :class:`~repro.query.workload.EncodedWorkload`.
            masks: Optional ``(Q, n_rows)`` boolean QI-mask matrix shared
                across estimators (see
                :func:`~repro.query.evaluate.batch_estimates`); without
                it each query recomputes its own mask.
            histograms: Optional ``(Q, m)`` observed perturbed-SA
                histograms (integer counts), e.g. one gather from a
                :class:`~repro.query.cube.PrefixSumCube` value cube;
                takes precedence over ``masks``.

        Returns:
            ``(Q,)`` float64 estimates, bit-identical to ``__call__``:
            every path reduces the same (weights × integer histogram)
            products, so only where the histogram comes from differs.
        """
        if histograms is not None:
            return (self.weight_rows(queries) * histograms).sum(axis=1)
        if isinstance(queries, EncodedWorkload):
            queries = queries.queries
        source = self.published.source
        sa_perturbed = self.published.sa_perturbed
        m = source.sa_cardinality
        out = np.empty(len(queries))
        for i, query in enumerate(queries):
            mask = masks[i] if masks is not None else qi_mask(source, query)
            observed = np.bincount(sa_perturbed[mask], minlength=m)
            weights = self._weights(query.sa_range)
            out[i] = (weights * observed).sum()
        return out


class AnatomyAnswerer:
    """Batch estimator over an ℓ-diverse Anatomy publication.

    Anatomy publishes exact QI values plus each group's SA multiset, so
    a COUNT query is estimated as ``sum_groups |group ∩ QI-predicates| *
    (group's SA mass in the range)`` — the group-level analogue of the
    Baseline, strictly more informed because distributions are local.
    """

    def __init__(self, published):
        from .cube import anatomy_group_of

        self.published = published
        # -1-initialized + coverage-checked: rows an ill-formed
        # publication fails to cover must not silently inherit garbage
        # group ids (they would corrupt every estimate).
        self.group_of = anatomy_group_of(published)
        counts = np.stack([group.sa_counts for group in published.groups])
        sizes = np.array([group.size for group in published.groups])
        distributions = counts / sizes[:, None]
        self.sa_prefix = np.concatenate(  # (G, m + 1)
            [
                np.zeros((len(published.groups), 1)),
                np.cumsum(distributions, axis=1),
            ],
            axis=1,
        )

    def __call__(self, query: CountQuery) -> float:
        mask = qi_mask(self.published.source, query)
        lo, hi = query.sa_range
        counts = np.bincount(
            self.group_of[mask], minlength=len(self.published.groups)
        )
        fractions = self.sa_prefix[:, hi + 1] - self.sa_prefix[:, lo]
        return float((counts * fractions).sum())

    def fraction_rows(self, queries) -> np.ndarray:
        """``(Q, G)`` per-query group SA-range mass fractions."""
        if isinstance(queries, EncodedWorkload):
            queries = queries.queries
        out = np.empty((len(queries), self.sa_prefix.shape[0]))
        for i, query in enumerate(queries):
            lo, hi = query.sa_range
            out[i] = self.sa_prefix[:, hi + 1] - self.sa_prefix[:, lo]
        return out

    def batch(
        self,
        queries,
        masks: np.ndarray | None = None,
        group_counts: np.ndarray | None = None,
    ) -> np.ndarray:
        """Answer a workload against masks or precomputed group counts.

        Same contract as :meth:`PerturbedAnswerer.batch`: per-query
        operations are the scalar ones, so estimates are bit-identical;
        ``masks`` only removes the per-query mask recomputation, and
        ``group_counts`` — ``(Q, G)`` integer per-group membership
        counts inside each query's QI box, e.g. one gather from a
        :class:`~repro.query.cube.PrefixSumCube` group cube — replaces
        the masks entirely.
        """
        if group_counts is not None:
            return (group_counts * self.fraction_rows(queries)).sum(axis=1)
        if isinstance(queries, EncodedWorkload):
            queries = queries.queries
        source = self.published.source
        n_groups = len(self.published.groups)
        out = np.empty(len(queries))
        for i, query in enumerate(queries):
            mask = masks[i] if masks is not None else qi_mask(source, query)
            lo, hi = query.sa_range
            counts = np.bincount(self.group_of[mask], minlength=n_groups)
            fractions = self.sa_prefix[:, hi + 1] - self.sa_prefix[:, lo]
            out[i] = (counts * fractions).sum()
        return out


class BaselineAnswerer:
    """Batch estimator over the §6.3 Baseline publication."""

    def __init__(self, published: BaselinePublication):
        self.published = published
        probs = published.global_distribution()
        self.sa_prefix = np.concatenate([[0.0], np.cumsum(probs)])

    def __call__(self, query: CountQuery) -> float:
        mask = qi_mask(self.published.source, query)
        lo, hi = query.sa_range
        return float(mask.sum() * (self.sa_prefix[hi + 1] - self.sa_prefix[lo]))

    def batch(
        self,
        queries,
        masks: np.ndarray | None = None,
        qi_counts: np.ndarray | None = None,
    ) -> np.ndarray:
        """Answer a workload in one vectorized pass.

        The Baseline only needs the *size* of each query's QI match, so
        ``qi_counts`` (``(Q,)`` int, e.g. from the shared bitmap index)
        is the cheapest input; ``masks`` or per-query recomputation are
        the fallbacks.  Integer counts are order-free and the per-query
        product is the same two-operand float multiply as ``__call__``,
        so estimates are bit-identical.
        """
        enc = EncodedWorkload.encode(self.published.source.schema, queries)
        if qi_counts is None:
            if masks is not None:
                qi_counts = masks.sum(axis=1)
            else:
                qi_counts = np.array(
                    [
                        qi_mask(self.published.source, query).sum()
                        for query in enc.queries
                    ],
                    dtype=np.int64,
                )
        return qi_counts * (
            self.sa_prefix[enc.sa_hi + 1] - self.sa_prefix[enc.sa_lo]
        )


