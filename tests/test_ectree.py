"""Tests for the ECTree / biSplit (§4.4), pinned to the paper's Example 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BetaLikeness,
    balanced_halve,
    beta_eligibility,
    bi_split,
    build_ectree,
    dp_partition,
    naive_halve,
    separating_split,
)


@pytest.fixture()
def example2_partition(example2):
    model = BetaLikeness(2.0)
    return dp_partition(example2.sa_distribution(), model)


class TestExample2Tree:
    """Figure 3's tree: [5,6,8] -> [2,3,4],[3,3,4]; [2,3,4] -> [1,1,2],[1,2,2]."""

    def test_leaf_specs_match_paper(self, example2_partition):
        specs = bi_split(
            example2_partition,
            beta_eligibility(example2_partition.f_min),
            bucket_sizes=[5, 6, 8],
        )
        assert sorted(s.tolist() for s in specs) == [
            [1, 1, 2],
            [1, 2, 2],
            [3, 3, 4],
        ]

    def test_paper_rejected_split(self, example2_partition):
        """g2 = [2,2,2] fails eligibility: 2/6 > min(f(p1), f(p2))."""
        eligible = beta_eligibility(example2_partition.f_min)
        assert not eligible(np.array([2, 2, 2]), 6)
        assert eligible(np.array([1, 1, 2]), 4)

    def test_naive_split_also_matches_example2(self, example2_partition):
        specs = bi_split(
            example2_partition,
            beta_eligibility(example2_partition.f_min),
            bucket_sizes=[5, 6, 8],
            balanced=False,
            separate=False,
        )
        assert sorted(s.tolist() for s in specs) == [
            [1, 1, 2],
            [1, 2, 2],
            [3, 3, 4],
        ]


class TestHalving:
    def test_naive_halve_floor_left(self):
        left, right = naive_halve(np.array([5, 6, 8]))
        assert left.tolist() == [2, 3, 4]
        assert right.tolist() == [3, 3, 4]

    def test_balanced_halve_preserves_totals(self, rng):
        for _ in range(20):
            counts = rng.integers(0, 30, size=6)
            if counts.sum() == 0:
                continue
            left, right = balanced_halve(counts)
            assert np.array_equal(left + right, counts)
            assert abs(int(left.sum()) - int(right.sum())) <= 1

    def test_balanced_halve_per_bucket_floor_ceil(self, rng):
        counts = rng.integers(0, 30, size=8)
        left, right = balanced_halve(counts)
        for c, l in zip(counts, left):
            assert l in (c // 2, c - c // 2)

    def test_balanced_matches_paper_on_example2_root(self):
        left, right = balanced_halve(np.array([5, 6, 8]))
        assert left.tolist() == [2, 3, 4]
        assert right.tolist() == [3, 3, 4]


class TestSeparatingSplit:
    def test_preserves_totals(self):
        counts = np.array([100, 300, 600])
        f_min = np.array([0.25, 0.5, 0.9])
        parts = separating_split(counts, f_min)
        assert parts is not None
        left, right = parts
        assert np.array_equal(left + right, counts)

    def test_quarantines_lowest_cap_bucket(self):
        counts = np.array([100, 300, 600])
        f_min = np.array([0.25, 0.5, 0.9])
        left, right = separating_split(counts, f_min)
        assert left[0] == 0  # constrained bucket fully on the right
        assert right[0] == 100
        # The quarantined share sits at half its cap.
        assert right[0] / right.sum() <= 0.5 * 0.25 + 1e-9

    def test_returns_none_when_impossible(self):
        # Quarantined bucket needs more companions than the node holds:
        # 50/(0.5*0.01) = 10000 >> 60.
        counts = np.array([50, 10])
        f_min = np.array([0.01, 0.9])
        assert separating_split(counts, f_min) is None

    def test_single_bucket_none(self):
        assert separating_split(np.array([10]), np.array([0.5])) is None


class TestBuildTree:
    def test_specs_cover_bucket_sizes(self, example2_partition):
        eligible = beta_eligibility(example2_partition.f_min)
        tree = build_ectree(
            [5, 6, 8], eligible, f_min=example2_partition.f_min
        )
        total = np.sum(tree.specs, axis=0)
        assert total.tolist() == [5, 6, 8]

    def test_all_leaves_eligible(self, example2_partition):
        eligible = beta_eligibility(example2_partition.f_min)
        tree = build_ectree(
            [5, 6, 8], eligible, f_min=example2_partition.f_min
        )
        for spec in tree.specs:
            assert eligible(spec, int(spec.sum()))

    def test_root_violation_rejected(self):
        eligible = beta_eligibility(np.array([0.01]))
        with pytest.raises(ValueError, match="Lemma 2"):
            build_ectree([10], eligible, f_min=np.array([0.01]))

    def test_empty_sizes_rejected(self):
        eligible = beta_eligibility(np.array([1.0]))
        with pytest.raises(ValueError):
            build_ectree([], eligible, f_min=np.array([]))
        with pytest.raises(ValueError):
            build_ectree([0, 0], eligible, f_min=np.array([1.0, 1.0]))

    def test_node_structure(self, example2_partition):
        eligible = beta_eligibility(example2_partition.f_min)
        tree = build_ectree(
            [5, 6, 8], eligible, f_min=example2_partition.f_min
        )
        assert tree.root.size == 19
        assert not tree.root.is_leaf
        assert tree.n_classes == len(tree.root.leaves())

    def test_bi_split_requires_sizes(self, example2_partition):
        with pytest.raises(ValueError, match="bucket_sizes"):
            bi_split(example2_partition)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_tree_conservation_property(data):
    """Leaf specs always sum to the root sizes and pass eligibility."""
    k = data.draw(st.integers(min_value=1, max_value=6))
    sizes = data.draw(st.lists(st.integers(0, 200), min_size=k, max_size=k))
    if sum(sizes) == 0:
        return
    # Loose caps so the root is always eligible.
    f_min = np.full(k, 1.0)
    eligible = beta_eligibility(f_min)
    tree = build_ectree(sizes, eligible, f_min=f_min)
    assert np.array_equal(np.sum(tree.specs, axis=0), np.array(sizes))
    for spec in tree.specs:
        assert int(spec.sum()) > 0
