"""Tests for the perturbation scheme (§5, Theorems 2–3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BetaLikeness, PerturbationScheme, perturb_table


@pytest.fixture()
def scheme(census_small):
    return PerturbationScheme.fit(census_small.sa_distribution(), 4.0)


class TestFit:
    def test_alphas_in_unit_interval(self, scheme):
        assert (scheme.alphas >= 0).all()
        assert (scheme.alphas <= 1).all()

    def test_matrix_is_column_stochastic(self, scheme):
        sums = scheme.matrix.sum(axis=0)
        assert np.allclose(sums, 1.0)
        assert (scheme.matrix >= 0).all()

    def test_diagonal_dominates_uniform(self, scheme):
        """Lemma 3: keeping a value is always likelier than landing on it
        from elsewhere."""
        m = scheme.m
        for j in range(m):
            off_diagonal = np.delete(scheme.matrix[:, j], j)
            assert (scheme.matrix[j, j] >= off_diagonal - 1e-12).all()

    def test_gamma_formula(self, scheme):
        i = 0
        p, cap = scheme.probs[i], scheme.caps[i]
        expected = (cap / p) * (1 - p) / (1 - cap)
        assert scheme.gammas[i] == pytest.approx(expected)

    def test_clm_from_max_gamma(self, scheme):
        assert scheme.c_lm == pytest.approx(
            1.0 / (scheme.gammas.max() + scheme.m - 1)
        )

    def test_theorem2_transition_ratio_bound(self, scheme):
        """Inequality (7): Pr(v_i→v) / Pr(v_j→v) <= γ_i for all i, j, v."""
        pm = scheme.matrix
        for v in range(scheme.m):
            row = pm[v, :]
            min_prob = row.min()
            assert min_prob > 0
            for i in range(scheme.m):
                assert row[i] / min_prob <= scheme.gammas[i] + 1e-9

    def test_theorem3_posterior_confidence_bounded(self, scheme):
        """The headline guarantee: for every observed value v, the Bayes
        posterior of any original value v_i is at most f(p_i)."""
        pm = scheme.matrix
        p = scheme.probs
        for v in range(scheme.m):
            evidence = float(pm[v, :] @ p)
            for i in range(scheme.m):
                posterior = p[i] * pm[v, i] / evidence
                assert posterior <= scheme.caps[i] + 1e-9

    def test_single_value_domain(self):
        scheme = PerturbationScheme.fit(np.array([0.0, 1.0]), 2.0)
        assert scheme.m == 1
        assert scheme.alphas[0] == 1.0

    def test_absent_values_excluded(self):
        probs = np.array([0.5, 0.0, 0.5])
        scheme = PerturbationScheme.fit(probs, 2.0)
        assert scheme.domain.tolist() == [0, 2]

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            PerturbationScheme.fit(np.zeros(3), 2.0)


class TestPerturbation:
    def test_output_within_domain(self, census_small, rng):
        pt = perturb_table(census_small, 3.0, rng=rng)
        assert set(np.unique(pt.sa_perturbed)) <= set(
            pt.scheme.domain.tolist()
        )

    def test_qi_untouched(self, census_small, rng):
        pt = perturb_table(census_small, 3.0, rng=rng)
        assert pt.qi is census_small.qi

    def test_retention_rate_matches_matrix(self, census_small):
        pt = perturb_table(
            census_small, 4.0, rng=np.random.default_rng(0)
        )
        expected = float(
            np.diag(pt.scheme.matrix) @ pt.scheme.probs
        )
        assert pt.retention_rate() == pytest.approx(expected, abs=0.02)

    def test_larger_beta_retains_more(self, census_small):
        low = perturb_table(census_small, 1.0, rng=np.random.default_rng(0))
        high = perturb_table(census_small, 5.0, rng=np.random.default_rng(0))
        assert high.retention_rate() > low.retention_rate()

    def test_unknown_code_rejected(self, census_small, rng):
        scheme = PerturbationScheme.fit(np.array([0.5, 0.0, 0.5]), 2.0)
        with pytest.raises(ValueError):
            scheme.perturb(np.array([1]), rng)


class TestReconstruction:
    def test_exact_on_expected_counts(self, scheme):
        """N' = PM^-1 (PM N) recovers N exactly."""
        true = np.zeros(50)
        true[scheme.domain] = np.arange(1, scheme.m + 1, dtype=float)
        observed = scheme.expected_observed(true)
        recovered = scheme.reconstruct(observed)
        assert np.allclose(recovered, true)

    def test_total_count_preserved(self, scheme, rng):
        observed = np.zeros(50)
        observed[scheme.domain] = rng.integers(0, 100, size=scheme.m)
        recovered = scheme.reconstruct(observed)
        assert recovered.sum() == pytest.approx(observed.sum())

    def test_statistical_consistency(self, census_small):
        """Reconstructing the full perturbed table approximates the true
        histogram (law of large numbers over the randomized response)."""
        pt = perturb_table(census_small, 4.0, rng=np.random.default_rng(3))
        observed = np.bincount(pt.sa_perturbed, minlength=50)
        recovered = pt.scheme.reconstruct(observed)
        true = census_small.sa_counts()
        # Within 5 standard-deviation-ish tolerance per value.
        assert np.abs(recovered - true).mean() < 0.02 * census_small.n_rows


@given(beta=st.floats(min_value=0.25, max_value=8.0))
@settings(max_examples=30, deadline=None)
def test_posterior_bound_property(beta):
    """Theorem 3 holds for arbitrary skewed distributions and β."""
    probs = np.array([0.01, 0.04, 0.15, 0.3, 0.5])
    scheme = PerturbationScheme.fit(probs, beta)
    model = BetaLikeness(beta)
    caps = np.asarray(model.threshold(scheme.probs), dtype=float)
    pm = scheme.matrix
    for v in range(scheme.m):
        evidence = float(pm[v, :] @ scheme.probs)
        posteriors = scheme.probs * pm[v, :] / evidence
        assert (posteriors <= caps + 1e-9).all()
