"""Scalable synthetic microdata for throughput experiments.

The CENSUS generator (:func:`repro.dataset.census.make_census`) is
faithful to the paper's Table 3 but fixed in shape: five attributes,
50 salary classes.  The parallel-execution benchmarks need tables whose
*scale knobs* — row count, QI dimensionality, SA cardinality, skew —
can be turned independently, so this module provides a plain
parameterized generator:

* every QI attribute is numerical with a domain sized so the total
  QI-space stays Hilbert-encodable and the range-bitmap index budget is
  exercised realistically at millions of rows;
* the SA follows a Zipf-like profile with tunable ``skew`` (0 =
  uniform), materialized through the same largest-remainder rounding
  as the CENSUS generator so every SA value occurs at least once and
  the realized counts are exact;
* each QI dimension is mildly correlated with the SA level (alternating
  sign per dimension), so equivalence classes and COUNT workloads see
  realistic dependence rather than pure noise.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import numpy as np

from .census import exact_sa_counts
from .schema import Attribute, Schema, SensitiveAttribute
from .table import Table

#: Default per-dimension domain size; with the default 3 QI dimensions
#: the summed domains keep a 1M-row range-bitmap index near the budget
#: boundary, which is exactly the regime the sharding benchmarks probe.
DEFAULT_QI_DOMAIN = 128


def synthetic_schema(
    qi_dims: int = 3,
    sa_cardinality: int = 32,
    qi_domain: int = DEFAULT_QI_DOMAIN,
) -> Schema:
    """The generator's schema: ``qi_dims`` numerical QIs plus the SA."""
    if qi_dims < 1:
        raise ValueError("need at least one QI dimension")
    if sa_cardinality < 2:
        raise ValueError("need at least two SA values")
    if qi_domain < 2:
        raise ValueError("QI domains need at least two values")
    qi = [
        Attribute.numerical(f"q{j}", 0, qi_domain - 1) for j in range(qi_dims)
    ]
    sensitive = SensitiveAttribute(
        "sa", tuple(f"sa-{i:03d}" for i in range(sa_cardinality))
    )
    return Schema(qi, sensitive)


def zipf_distribution(m: int, skew: float) -> np.ndarray:
    """A normalized Zipf-like profile ``p_i ∝ (i + 1)^-skew`` over codes.

    ``skew=0`` is uniform; larger values concentrate mass on the low
    codes.  The profile is laid out directly on SA codes (not shuffled):
    low codes frequent, high codes rare — convenient for eyeballing and
    deterministic by construction.
    """
    if skew < 0:
        raise ValueError("skew must be >= 0")
    weights = (np.arange(m, dtype=float) + 1.0) ** (-skew)
    return weights / weights.sum()


def synthetic(
    rows: int,
    qi_dims: int = 3,
    sa_cardinality: int = 32,
    skew: float = 1.0,
    seed: int = 0,
    *,
    qi_domain: int = DEFAULT_QI_DOMAIN,
    correlation: float = 0.3,
) -> Table:
    """Generate a synthetic microdata table at an arbitrary scale.

    Args:
        rows: Number of tuples (the parallel benchmarks use 1M).
        qi_dims: Number of numerical QI attributes.
        sa_cardinality: SA domain size ``m``.
        skew: Zipf exponent of the SA profile (0 = uniform).
        seed: PRNG seed; identical parameters give identical tables.
        qi_domain: Values per QI attribute (``[0, qi_domain - 1]``).
        correlation: Strength in ``[0, 1]`` of the QI↔SA dependence.

    Returns:
        A :class:`~repro.dataset.table.Table` whose realized SA counts
        match the Zipf profile exactly (largest-remainder rounding, every
        value covered).
    """
    if rows < sa_cardinality:
        raise ValueError(
            f"need at least {sa_cardinality} rows to cover the SA domain"
        )
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [0, 1]")
    schema = synthetic_schema(qi_dims, sa_cardinality, qi_domain)
    rng = np.random.default_rng(seed)

    probs = zipf_distribution(sa_cardinality, skew)
    counts = exact_sa_counts(rows, probs)
    sa = np.repeat(np.arange(sa_cardinality, dtype=np.int64), counts)
    rng.shuffle(sa)

    level = sa / (sa_cardinality - 1)  # normalized SA level in [0, 1]
    qi = np.empty((rows, qi_dims), dtype=np.int64)
    half_span = (qi_domain - 1) / 2.0
    for j in range(qi_dims):
        # Alternate the correlation sign per dimension so no single
        # direction of QI-space is monotone in the SA.
        sign = 1.0 if j % 2 == 0 else -1.0
        center = half_span + sign * correlation * half_span * (level - 0.5)
        spread = (1.0 - 0.5 * correlation) * qi_domain / 4.0
        qi[:, j] = np.clip(
            np.rint(rng.normal(center, spread)), 0, qi_domain - 1
        ).astype(np.int64)
    return Table(schema, qi, sa)
