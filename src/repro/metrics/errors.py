"""Workload error metrics shared by the query and metrics layers.

One implementation of the paper's relative-error rule (``|est - prec| /
prec`` with zero-``prec`` queries dropped, §6.2) feeds both the median
metric Figs. 8–9 report and the quartile :class:`ErrorProfile` the
utility benches use, so the drop rule cannot diverge between them.

This module is a leaf (numpy only) on purpose: both ``repro.query`` and
``repro.metrics`` import it, and it must not import either of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def relative_errors(
    precise: np.ndarray, estimates: np.ndarray
) -> np.ndarray:
    """``|est - prec| / prec`` with zero-``prec`` queries dropped (§6.2)."""
    precise = np.asarray(precise, dtype=float)
    estimates = np.asarray(estimates, dtype=float)
    keep = precise > 0
    return np.abs(estimates[keep] - precise[keep]) / precise[keep]


def median_relative_error(
    precise: np.ndarray, estimates: np.ndarray
) -> float:
    """The paper's workload metric: median of the relative errors."""
    errors = relative_errors(precise, estimates)
    if errors.size == 0:
        raise ValueError("every query had a zero precise answer")
    return float(np.median(errors))


@dataclass(frozen=True)
class ErrorProfile:
    """Summary of a workload's relative errors."""

    median: float
    mean: float
    p25: float
    p75: float
    p95: float
    n_queries: int

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"median={self.median:.3%} mean={self.mean:.3%} "
            f"IQR=[{self.p25:.3%}, {self.p75:.3%}] p95={self.p95:.3%} "
            f"({self.n_queries} queries)"
        )


def error_profile(
    precise: np.ndarray, estimates: np.ndarray
) -> ErrorProfile:
    """Quartile summary of ``|est - prec| / prec`` (zero-prec dropped)."""
    errors = relative_errors(precise, estimates)
    if errors.size == 0:
        raise ValueError("every query had a zero precise answer")
    return ErrorProfile(
        median=float(np.median(errors)),
        mean=float(errors.mean()),
        p25=float(np.percentile(errors, 25)),
        p75=float(np.percentile(errors, 75)),
        p95=float(np.percentile(errors, 95)),
        n_queries=int(errors.size),
    )
