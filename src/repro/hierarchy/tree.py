"""Generalization hierarchies for categorical attributes.

A :class:`Hierarchy` is a rooted tree whose leaves are the values of a
categorical domain.  It supports the operations the paper relies on:

* the *lowest common ancestor* (LCA) of a set of values, used to generalize
  an equivalence class (Section 4.1, Eq. 3);
* counting ``leaves(a)`` under a node, used by the categorical information
  loss metric (Eq. 3);
* the pre-order traversal of leaves, which defines the one-dimensional axis
  a categorical attribute contributes to QI-space (Section 4.5).

Leaves are addressed by their *rank*: the position of the leaf in the
pre-order traversal.  Because hierarchy nodes cover contiguous rank
intervals, a generalized categorical value is always representable as a
``(lo, hi)`` rank interval, which keeps equivalence-class boxes uniform
across numerical and categorical attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Node:
    """A single hierarchy node.

    Attributes:
        label: Human-readable name of the node.
        children: Child nodes, empty for leaves.
        depth: Distance from the root (root has depth 0).
        rank_lo: Pre-order rank of the leftmost leaf under this node.
        rank_hi: Pre-order rank of the rightmost leaf under this node.
    """

    label: str
    children: list["Node"] = field(default_factory=list)
    depth: int = 0
    rank_lo: int = -1
    rank_hi: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def n_leaves(self) -> int:
        """Number of leaves under this node (``|leaves(a)|`` in Eq. 3)."""
        return self.rank_hi - self.rank_lo + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"{self.n_leaves} leaves"
        return f"Node({self.label!r}, {kind})"


class Hierarchy:
    """A generalization hierarchy over a categorical domain.

    Construct with :meth:`from_spec` (nested lists/tuples) or :meth:`flat`
    (a single root over all values, i.e. height 1).

    The class precomputes, for every node, its covered leaf-rank interval,
    so LCA queries run in ``O(height * fanout)`` and information-loss
    queries in ``O(1)``.
    """

    def __init__(self, root: Node):
        self.root = root
        self._annotate(root, depth=0, next_rank=0)
        self.leaves: list[Node] = []
        self._collect_leaves(root)
        self.label_to_rank: dict[str, int] = {
            leaf.label: i for i, leaf in enumerate(self.leaves)
        }
        if len(self.label_to_rank) != len(self.leaves):
            raise ValueError("hierarchy leaf labels must be unique")
        self.height = max(leaf.depth for leaf in self.leaves)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec) -> "Hierarchy":
        """Build a hierarchy from a nested specification.

        A specification node is either a string (a leaf) or a
        ``(label, [children...])`` pair.  Example (Fig. 1 of the paper)::

            Hierarchy.from_spec(
                ("any disease", [
                    ("nervous", ["headache", "epilepsy", "brain tumors"]),
                    ("circulatory", ["anemia", "angina", "heart murmur"]),
                ])
            )
        """
        return cls(cls._build(spec))

    @classmethod
    def flat(cls, labels: Sequence[str], root_label: str = "*") -> "Hierarchy":
        """A height-1 hierarchy: a single root over all ``labels``."""
        return cls(Node(root_label, [Node(str(v)) for v in labels]))

    @staticmethod
    def _build(spec) -> Node:
        if isinstance(spec, str):
            return Node(spec)
        label, children = spec
        return Node(str(label), [Hierarchy._build(c) for c in children])

    def _annotate(self, node: Node, depth: int, next_rank: int) -> int:
        node.depth = depth
        if node.is_leaf:
            node.rank_lo = node.rank_hi = next_rank
            return next_rank + 1
        for child in node.children:
            next_rank = self._annotate(child, depth + 1, next_rank)
        node.rank_lo = node.children[0].rank_lo
        node.rank_hi = node.children[-1].rank_hi
        return next_rank

    def _collect_leaves(self, node: Node) -> None:
        if node.is_leaf:
            self.leaves.append(node)
        else:
            for child in node.children:
                self._collect_leaves(child)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def n_leaves(self) -> int:
        """Total number of leaves (``|leaves(H)|`` in Eq. 3)."""
        return len(self.leaves)

    def rank_of(self, label: str) -> int:
        """Pre-order rank of a leaf label."""
        return self.label_to_rank[label]

    def leaf_label(self, rank: int) -> str:
        return self.leaves[rank].label

    def lca(self, ranks: Iterable[int]) -> Node:
        """Lowest common ancestor of the leaves with the given ranks."""
        ranks = list(ranks)
        if not ranks:
            raise ValueError("lca of an empty set is undefined")
        return self.lca_of_range(min(ranks), max(ranks))

    def lca_of_range(self, lo: int, hi: int) -> Node:
        """Lowest node covering the whole leaf-rank interval ``[lo, hi]``.

        Because sibling rank intervals are disjoint and nested intervals
        are laminar, the LCA is found by descending from the root while a
        single child still covers the interval.
        """
        if not (0 <= lo <= hi < self.n_leaves):
            raise ValueError(f"rank interval [{lo}, {hi}] out of bounds")
        node = self.root
        descending = True
        while descending and not node.is_leaf:
            descending = False
            for child in node.children:
                if child.rank_lo <= lo and hi <= child.rank_hi:
                    node = child
                    descending = True
                    break
        return node

    def generalization_cost(self, lo: int, hi: int) -> float:
        """Categorical information loss of the interval (Eq. 3).

        Returns ``0`` when the interval's LCA is a leaf, else
        ``|leaves(lca)| / |leaves(H)|``.
        """
        node = self.lca_of_range(lo, hi)
        if node.is_leaf:
            return 0.0
        return node.n_leaves / self.n_leaves

    def find(self, label: str) -> Node:
        """Locate any node (leaf or internal) by label; DFS."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.label == label:
                return node
            stack.extend(node.children)
        raise KeyError(label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Hierarchy(root={self.root.label!r}, leaves={self.n_leaves}, "
            f"height={self.height})"
        )
