"""The staged anonymization pipeline and its uniform result record.

Every publication scheme in this repository — the paper's BUREL and
perturbation, and the comparators (SABRE, the Mondrian family, Anatomy,
full-domain/Incognito) — shares one shape:

    prepare → partition → allocate → materialize → publish

``prepare`` derives distributions/models/constraints from the input,
``partition`` groups SA values or cuts the QI space, ``allocate`` fixes
how many tuples each output group draws (the ECTree phase), ``materialize``
picks concrete tuples, and ``publish`` assembles the output format.  Not
every algorithm has every stage (Mondrian has no allocation; perturbation
has no partition); adapters declare the stages they use and the engine
times each one, so per-stage provenance is comparable across algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..dataset.table import Table
from ..obs import Telemetry

#: Canonical stage names, in execution order.
STAGES = ("prepare", "partition", "allocate", "materialize", "publish")


@dataclass
class PipelineContext:
    """Mutable scratchpad threaded through a pipeline's stages.

    Attributes:
        table: The input microdata.
        params: Resolved algorithm parameters (defaults merged with the
            caller's overrides).
        rng: The uniform randomization hook; ``None`` means the
            algorithm's deterministic behaviour.
        shared: Optional :class:`~repro.engine.batch.PreparedTable`
            carrying per-table preprocessing reused across a batch.
        artifacts: Stage outputs handed to later stages.
        provenance: What the run wants recorded on the
            :class:`RunResult` (partition, specs, model, ...).
        published: The final publication, set by the last stage.
    """

    table: Table
    params: dict[str, Any]
    rng: np.random.Generator | None = None
    shared: Any = None
    artifacts: dict[str, Any] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)
    published: Any = None


#: One stage: a side-effecting callable over the context.
StageFn = Callable[[PipelineContext], None]


@dataclass(frozen=True)
class RunResult:
    """Uniform outcome of one engine run.

    Attributes:
        algorithm: Registry name of the algorithm that ran.
        published: The publication (a
            :class:`~repro.dataset.published.GeneralizedTable`,
            :class:`~repro.core.perturb.PerturbedTable` or
            :class:`~repro.anonymity.anatomy.AnatomyTable`, depending on
            the algorithm).
        params: The fully resolved parameters the run used.
        stage_seconds: Wall-clock seconds per executed stage, in
            execution order.
        provenance: Algorithm-specific intermediates (bucket partition,
            EC specs, privacy model, transition scheme, ...).
        elapsed_seconds: Total wall-clock time of the run.
    """

    algorithm: str
    published: Any
    params: dict[str, Any]
    stage_seconds: dict[str, float]
    provenance: dict[str, Any]
    elapsed_seconds: float

    @property
    def n_classes(self) -> int:
        """Number of published groups (when the format has groups)."""
        return len(self.published)


class Pipeline:
    """An ordered sequence of named stages for one algorithm."""

    def __init__(self, algorithm: str, stages: Sequence[tuple[str, StageFn]]):
        for name, _ in stages:
            if name not in STAGES:
                raise ValueError(
                    f"unknown stage {name!r}; expected one of {STAGES}"
                )
        order = {name: i for i, name in enumerate(STAGES)}
        indices = [order[name] for name, _ in stages]
        if indices != sorted(indices):
            raise ValueError("stages must follow the canonical order")
        self.algorithm = algorithm
        self.stages = list(stages)

    def run(
        self,
        table: Table,
        params: Mapping[str, Any],
        rng: np.random.Generator | None = None,
        shared: Any = None,
        sink: Callable[[RunResult], None] | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> RunResult:
        """Execute the stages in order, one span per stage.

        ``sink``, when given, receives the finished :class:`RunResult`
        right after the publish stage — the hook the
        :mod:`repro.service` publication store uses to certify and
        persist runs (a sink that raises aborts the run, so nothing is
        returned for a publication the sink refused).

        ``telemetry``, when given and enabled, receives the run's spans
        (``engine.run`` wrapping one ``engine.<stage>`` per executed
        stage).  :attr:`RunResult.stage_seconds` is *derived from those
        spans* either way: a disabled/absent telemetry gets a private
        run-scoped tracer, so the result record is identical in shape
        and the session trace only gains spans when asked to.
        """
        if table.n_rows == 0:
            raise ValueError("cannot anonymize an empty table")
        tel = (
            telemetry
            if telemetry is not None and telemetry.enabled
            else Telemetry()
        )
        ctx = PipelineContext(
            table=table, params=dict(params), rng=rng, shared=shared
        )
        stage_seconds: dict[str, float] = {}
        with tel.span(
            "engine.run", algorithm=self.algorithm, rows=table.n_rows
        ) as root:
            for name, fn in self.stages:
                with tel.span(f"engine.{name}") as span:
                    fn(ctx)
                stage_seconds[name] = span.duration
        elapsed = root.duration
        if ctx.published is None:
            raise RuntimeError(
                f"pipeline {self.algorithm!r} finished without publishing"
            )
        result = RunResult(
            algorithm=self.algorithm,
            published=ctx.published,
            params=ctx.params,
            stage_seconds=stage_seconds,
            provenance=ctx.provenance,
            elapsed_seconds=elapsed,
        )
        if sink is not None:
            sink(result)
        return result
