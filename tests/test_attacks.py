"""Tests for the Section 7 attacks."""

import numpy as np
import pytest

from repro.anonymity import anatomize
from repro.attacks import (
    definetti_attack,
    hierarchy_groups,
    naive_bayes_attack,
    naive_bayes_attack_raw,
    random_assignment_baseline,
    salary_bands,
    similarity_gain,
    skewness_gain,
)
from repro.core import BetaLikeness, burel
from repro.dataset import make_census, publish


class TestNaiveBayes:
    def test_attack_on_burel_near_baseline(self, census_small):
        """§7's finding: accuracy stays close to the most frequent SA
        value's share (4.84%)."""
        pub = burel(census_small, 4.0).published
        result = naive_bayes_attack(pub)
        assert result.accuracy <= result.majority_baseline + 0.02

    def test_raw_attack_beats_anonymized(self):
        """With strong QI-SA dependence the raw classifier must do
        better than the one trained on BUREL's output."""
        table = make_census(10_000, seed=7, correlation=0.9,
                            qi_names=("Age", "Gender", "Education"))
        raw = naive_bayes_attack_raw(table)
        anon = naive_bayes_attack(burel(table, 3.0).published)
        assert raw.accuracy > anon.accuracy

    def test_predictions_shape(self, census_small):
        pub = burel(census_small, 3.0).published
        result = naive_bayes_attack(pub)
        assert result.predictions.shape == (census_small.n_rows,)
        assert result.predictions.min() >= 0
        assert result.predictions.max() < 50

    def test_majority_baseline_value(self, census_small):
        result = naive_bayes_attack_raw(census_small)
        assert result.majority_baseline == pytest.approx(
            census_small.sa_distribution().max()
        )


class TestDeFinetti:
    def test_beats_random_assignment_on_anatomy(self):
        table = make_census(5_000, seed=3, correlation=0.9,
                            qi_names=("Age", "Gender", "Education"))
        at = anatomize(table, 3, rng=np.random.default_rng(0))
        attack = definetti_attack(at, max_iterations=8)
        baseline = random_assignment_baseline(at)
        assert attack.accuracy >= baseline.accuracy

    def test_burel_output_resists(self, census_small):
        """On β-bounded ECs the attack collapses towards the baseline."""
        pub = burel(census_small, 2.0).published
        attack = definetti_attack(pub, max_iterations=6)
        assert attack.accuracy < 0.15

    def test_result_fields(self, census_small):
        pub = burel(census_small, 3.0).published
        attack = definetti_attack(pub, max_iterations=3)
        assert attack.iterations <= 3
        assert attack.predictions.shape == (census_small.n_rows,)

    def test_unsupported_publication_type(self):
        with pytest.raises(TypeError):
            definetti_attack(object())


class TestSkewness:
    def test_gain_bounded_by_model(self, census_small):
        """On BUREL output the worst q/p ratio is at most 1 + the cap's
        relative slack — i.e. gain - 1 <= β against each value's f."""
        beta = 2.0
        pub = burel(census_small, beta).published
        report = skewness_gain(pub)
        p = pub.global_distribution()
        model = BetaLikeness(beta)
        cap = model.threshold(p[report.value_index])
        assert report.max_gain * p[report.value_index] <= cap + 1e-9

    def test_skewed_publication_detected(self, patients):
        gt = publish(patients, [np.array([0, 1, 2]), np.array([3, 4, 5])])
        report = skewness_gain(gt)
        assert report.max_gain == pytest.approx(2.0)  # 1/3 over 1/6

    def test_similarity_attack_on_semantic_groups(self, patients):
        """The paper's §2 similarity example: all-nervous EC doubles the
        nervous-disease confidence."""
        gt = publish(patients, [np.array([0, 1, 2]), np.array([3, 4, 5])])
        groups = hierarchy_groups(gt, depth=1)
        report = similarity_gain(gt, groups)
        assert report.max_gain == pytest.approx(2.0)

    def test_hierarchy_groups_fallback(self, census_small):
        pub = burel(census_small, 3.0).published
        groups = hierarchy_groups(pub)
        assert len(groups) == 50  # no SA hierarchy -> singletons

    def test_salary_bands(self):
        bands = salary_bands(50, 10)
        assert len(bands) == 5
        assert bands[0] == list(range(10))
        assert bands[-1] == list(range(40, 50))

    def test_similarity_bounded_on_burel(self, census_small):
        pub = burel(census_small, 2.0).published
        report = similarity_gain(pub, salary_bands())
        # Group gain is bounded by the max per-value gain.
        per_value = skewness_gain(pub)
        assert report.max_gain <= per_value.max_gain + 1e-9
