"""Distribution distances, information-loss and privacy measurement."""

from .distributions import (
    emd_equal,
    emd_ordered,
    js_divergence,
    kl_divergence,
    max_abs_log_ratio,
    max_relative_gain,
)
from .loss import (
    average_class_size,
    average_information_loss,
    discernibility,
    il_attribute,
    il_class,
)
from .privacy import (
    PrivacyProfile,
    average_beta,
    average_l,
    average_t,
    measured_beta,
    measured_delta,
    measured_l,
    measured_t,
    privacy_profile,
)
from .risk import (
    RiskProfile,
    attribute_disclosure_risks,
    reidentification_risks,
    risk_profile,
)
from .utility import (
    ErrorProfile,
    error_profile,
    global_certainty_penalty,
    normalized_certainty_penalty,
    reconstruction_tv_error,
)

__all__ = [
    "emd_equal",
    "emd_ordered",
    "js_divergence",
    "kl_divergence",
    "max_abs_log_ratio",
    "max_relative_gain",
    "average_class_size",
    "average_information_loss",
    "discernibility",
    "il_attribute",
    "il_class",
    "ErrorProfile",
    "error_profile",
    "global_certainty_penalty",
    "normalized_certainty_penalty",
    "reconstruction_tv_error",
    "RiskProfile",
    "attribute_disclosure_risks",
    "reidentification_risks",
    "risk_profile",
    "PrivacyProfile",
    "average_beta",
    "average_l",
    "average_t",
    "measured_beta",
    "measured_delta",
    "measured_l",
    "measured_t",
    "privacy_profile",
]
