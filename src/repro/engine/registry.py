"""The algorithm registry: one uniform entry point for every scheme.

An :class:`Anonymizer` packages an algorithm's default parameters and
its staged pipeline.  Implementations register themselves with
:func:`register`, after which ``engine.run(name, table, **params)``
dispatches uniformly — the CLI, experiments and benchmarks all share
this single dispatch layer instead of hand-wiring imports.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Protocol, runtime_checkable

import numpy as np

from ..dataset.table import Table
from .pipeline import Pipeline, RunResult, StageFn


@runtime_checkable
class Anonymizer(Protocol):
    """One registered publication scheme.

    Attributes:
        name: Registry key (``"burel"``, ``"sabre"``, ...).
        defaults: Complete parameter set with default values; ``run``
            rejects parameters outside this set so typos fail loudly.
    """

    name: str
    defaults: Mapping[str, Any]

    def stages(self) -> list[tuple[str, StageFn]]:
        """The algorithm's pipeline stages in canonical order."""
        ...


_REGISTRY: dict[str, Anonymizer] = {}


def register(cls: type) -> type:
    """Class decorator adding an :class:`Anonymizer` to the registry."""
    instance = cls()
    name = instance.name
    if name in _REGISTRY:
        raise ValueError(f"algorithm {name!r} is already registered")
    _REGISTRY[name] = instance
    return cls


def get_algorithm(name: str) -> Anonymizer:
    """Look up a registered algorithm by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; registered: {algorithm_names()}"
        ) from None


def algorithm_names() -> list[str]:
    """Sorted names of all registered algorithms."""
    return sorted(_REGISTRY)


def _resolve_rng(
    rng: np.random.Generator | int | None,
) -> np.random.Generator | None:
    """Uniform rng parameter: ``None`` = deterministic, int = seed."""
    if rng is None or isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def run(
    name: str,
    table: Table,
    *,
    rng: np.random.Generator | int | None = None,
    shared: Any = None,
    sink: Callable[[RunResult], None] | None = None,
    telemetry=None,
    **params: Any,
) -> RunResult:
    """Anonymize ``table`` with the named algorithm.

    Args:
        name: A registered algorithm (:func:`algorithm_names`).
        table: The microdata to publish.
        rng: Uniform randomization hook — ``None`` for the algorithm's
            deterministic behaviour, an int seed, or a generator.
        shared: Optional :class:`~repro.engine.batch.PreparedTable` with
            precomputed per-table artifacts (see :func:`~repro.engine.batch.run_many`).
        sink: Optional hook receiving the :class:`RunResult` right after
            the publish stage (the :mod:`repro.service` store admission
            path).
        telemetry: Optional :class:`repro.obs.Telemetry` receiving the
            run's per-stage spans (see :meth:`Pipeline.run`).
        **params: Algorithm parameters; unknown names are rejected.

    Returns:
        A :class:`~repro.engine.pipeline.RunResult` with the
        publication, per-stage timings and provenance.
    """
    algo = get_algorithm(name)
    if shared is not None and shared.table is not table:
        raise ValueError(
            "shared PreparedTable was built for a different table"
        )
    unknown = set(params) - set(algo.defaults)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for {name!r}; "
            f"accepted: {sorted(algo.defaults)}"
        )
    merged = {**algo.defaults, **params}
    pipeline = Pipeline(name, algo.stages())
    return pipeline.run(
        table, merged, rng=_resolve_rng(rng), shared=shared, sink=sink,
        telemetry=telemetry,
    )
