"""SABRE: bucketization + redistribution for t-closeness (§6.1 comparator).

The paper compares BUREL against SABRE (Cao, Karras, Kalnis, Tan, VLDB
Journal 2011), a t-closeness-specific two-phase algorithm with the same
architecture BUREL later adopted for β-likeness: SA values are grouped
into buckets such that ECs composed proportionally obey the privacy
condition, then EC sizes are fixed by recursive splitting and tuples are
materialized with QI-space locality.

SABRE's original bucketization walks the SA hierarchy to bound a
hierarchical EMD.  This reimplementation supports the two ground
distances the evaluation needs (DESIGN.md §3):

* **equal distance** (``ordered=False``) — the worst-case EMD of an EC
  drawing ``x_j`` tuples from bucket ``B_j`` is
  ``sum_j max(x_j/|G| - p_{ℓ_j}, 0)`` (all of a bucket's mass lands on
  its least frequent value; concentration dominates any other
  within-bucket composition);
* **ordered distance** (``ordered=True``, for ordinal SAs such as the
  CENSUS salary classes) — within-bucket reshuffling costs at most the
  bucket's ordinal *span*, giving the bound
  ``sum_j (x_j/|G|) * span_j/(m-1) + sum_j max(x_j/|G| - w_j, 0)``
  (the second term prices deviation from proportionality at the maximal
  unit cost of 1).

Bucketization packs frequency-sorted values into the fewest buckets
whose total worst-case EMD stays within ``t``; the redistribution tree
reuses BUREL's machinery with the matching eligibility predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bucketize import BucketPartition
from ..core.model import TOLERANCE
from ..dataset.published import GeneralizedTable
from ..dataset.table import Table


@dataclass
class SabreResult:
    """Published table plus provenance for experiments."""

    published: GeneralizedTable
    partition: BucketPartition
    t: float
    ordered: bool
    elapsed_seconds: float


def _bucket_spans(buckets, m: int) -> np.ndarray:
    """Normalized ordinal span of each bucket's value set."""
    if m <= 1:
        return np.zeros(len(buckets))
    return np.array(
        [(int(b.max()) - int(b.min())) / (m - 1) for b in buckets]
    )


def emd_eligibility(partition: BucketPartition, t: float, ordered: bool, m: int):
    """Worst-case EMD of a draw vector must not exceed ``t``."""
    min_freq = np.asarray(partition.min_freq, dtype=float)
    weights = np.asarray(partition.weights, dtype=float)
    spans = _bucket_spans(partition.buckets, m)

    def eligible_equal(counts: np.ndarray, size: int) -> bool:
        if size <= 0:
            return False
        worst = np.maximum(counts / size - min_freq, 0.0).sum()
        return bool(worst <= t + TOLERANCE)

    def eligible_ordered(counts: np.ndarray, size: int) -> bool:
        if size <= 0:
            return False
        shares = counts / size
        worst = (shares * spans).sum()
        worst += np.maximum(shares - weights, 0.0).sum()
        return bool(worst <= t + TOLERANCE)

    return eligible_ordered if ordered else eligible_equal


def sabre_partition(
    probs: np.ndarray, t: float, ordered: bool = False
) -> BucketPartition:
    """Minimum-bucket partition with total worst-case EMD within ``t``.

    Dynamic program over ascending-frequency prefixes: ``dp[e][c]`` =
    least total cost partitioning the first ``e`` values into ``c``
    buckets, where a window's cost is its worst-case EMD contribution
    under the chosen ground distance.  The answer is the smallest ``c``
    whose best cost fits the budget (ties resolved toward smaller cost,
    leaving more headroom for the redistribution phase).
    """
    if t <= 0:
        raise ValueError("t must be positive")
    probs = np.asarray(probs, dtype=float)
    present = np.nonzero(probs > 0)[0]
    if present.size == 0:
        raise ValueError("the table has no sensitive values")
    order = present[np.lexsort((present, probs[present]))]
    p = probs[order]
    m_present = p.shape[0]
    m_domain = probs.shape[0]
    prefix = np.concatenate([[0.0], np.cumsum(p)])

    # Ordinal positions (over the full domain) of the frequency-sorted
    # values, with running min/max to evaluate window spans in O(1).
    positions = order.astype(np.int64)

    def window_cost(b: int, e: int) -> float:
        """Worst-case EMD contribution of window ``b..e`` (0-based)."""
        weight = prefix[e + 1] - prefix[b]
        if not ordered:
            return float(weight - p[b])
        if m_domain <= 1 or b == e:
            return 0.0
        span = (int(positions[b : e + 1].max()) - int(positions[b : e + 1].min()))
        return float(weight * span / (m_domain - 1))

    INF = float("inf")
    dp = np.full((m_present + 1, m_present + 1), INF)
    dp[0][0] = 0.0
    back = np.zeros((m_present + 1, m_present + 1), dtype=np.int64)
    for e in range(1, m_present + 1):
        for b in range(e, 0, -1):  # window covers values b..e (1-based)
            w_cost = window_cost(b - 1, e - 1)
            if w_cost > t:
                # Equal-distance cost grows monotonically as the window
                # widens; the ordered cost may not, so only prune the
                # scan in the monotone case.
                if not ordered:
                    break
                continue
            for c in range(1, e + 1):
                if dp[b - 1][c - 1] + w_cost < dp[e][c]:
                    dp[e][c] = dp[b - 1][c - 1] + w_cost
                    back[e][c] = b

    chosen_c = None
    for c in range(1, m_present + 1):
        if dp[m_present][c] <= t + TOLERANCE:
            chosen_c = c
            break
    if chosen_c is None:
        raise ValueError(f"no bucketization satisfies t={t}")

    boundaries: list[tuple[int, int]] = []
    e, c = m_present, chosen_c
    while e > 0:
        b = int(back[e][c])
        boundaries.append((b - 1, e - 1))
        e, c = b - 1, c - 1
    boundaries.reverse()

    buckets, weights, min_freq = [], [], []
    for b, e in boundaries:
        values = order[b : e + 1]
        buckets.append(np.array(sorted(int(v) for v in values), dtype=np.int64))
        weights.append(float(probs[values].sum()))
        min_freq.append(float(probs[values].min()))
    min_arr = np.array(min_freq)
    # f_min records a per-bucket share cap analog used only to order
    # splitting heuristics; the real constraint lives in the eligibility
    # predicate.
    return BucketPartition(
        buckets=tuple(buckets),
        weights=np.array(weights),
        min_freq=min_arr,
        f_min=min_arr + t,
    )


def sabre(
    table: Table,
    t: float,
    ordered: bool = False,
    rng: np.random.Generator | None = None,
) -> SabreResult:
    """Anonymize ``table`` to satisfy t-closeness.

    Args:
        table: The microdata to publish.
        t: The closeness threshold in (0, 1].
        ordered: Use the ordered ground distance (for ordinal SA
            domains) instead of the equal distance.
        rng: Optional generator randomizing retrieval seeds.

    Returns:
        A :class:`SabreResult`; the published classes satisfy
        ``EMD(P, Q) <= t`` for every EC by the worst-case bound.

    Routed through the staged engine (``repro.engine``); this wrapper
    keeps the historical call shape and result type.
    """
    from ..engine import run as engine_run

    result = engine_run("sabre", table, rng=rng, t=t, ordered=ordered)
    return SabreResult(
        published=result.published,
        partition=result.provenance["partition"],
        t=t,
        ordered=ordered,
        elapsed_seconds=result.elapsed_seconds,
    )
