"""Tests for DPpartition (§4.3) and the greedy ablation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BetaLikeness, dp_partition, greedy_partition


class TestExample2:
    """The bucketization worked through in the paper's Example 2."""

    def test_paper_buckets(self, example2):
        model = BetaLikeness(2.0)
        part = dp_partition(example2.sa_distribution(), model)
        buckets = [sorted(int(v) for v in b) for b in part.buckets]
        # {headache, epilepsy}, {brain tumors, anemia}, {angina, heart murmur}
        assert buckets == [[0, 1], [2, 3], [4, 5]]

    def test_bucket_weights(self, example2):
        model = BetaLikeness(2.0)
        part = dp_partition(example2.sa_distribution(), model)
        assert np.allclose(sorted(part.weights), [5 / 19, 6 / 19, 8 / 19])

    def test_lemma2_condition_holds(self, example2):
        model = BetaLikeness(2.0)
        part = dp_partition(example2.sa_distribution(), model)
        assert (part.weights <= part.f_min + 1e-12).all()


class TestDpPartition:
    def test_every_value_in_exactly_one_bucket(self, census_small):
        model = BetaLikeness(3.0)
        part = dp_partition(census_small.sa_distribution(), model)
        seen = np.concatenate(part.buckets)
        assert sorted(seen.tolist()) == list(range(50))

    def test_weights_sum_to_one(self, census_small):
        model = BetaLikeness(3.0)
        part = dp_partition(census_small.sa_distribution(), model)
        assert part.weights.sum() == pytest.approx(1.0)

    def test_zero_frequency_values_excluded(self):
        model = BetaLikeness(2.0)
        probs = np.array([0.5, 0.0, 0.5])
        part = dp_partition(probs, model)
        seen = np.concatenate(part.buckets).tolist()
        assert 1 not in seen

    def test_single_value_domain(self):
        model = BetaLikeness(2.0)
        part = dp_partition(np.array([1.0]), model)
        assert len(part) == 1

    def test_empty_domain_rejected(self):
        model = BetaLikeness(2.0)
        with pytest.raises(ValueError):
            dp_partition(np.zeros(3), model)

    def test_margin_zero_reproduces_paper_condition(self, example2):
        """Lemma 2's strict inequality: sum p < f(p_min) per bucket."""
        model = BetaLikeness(2.0)
        part = dp_partition(example2.sa_distribution(), model, margin=0.0)
        caps = np.asarray(model.threshold(part.min_freq), dtype=float)
        assert (part.weights < caps).all()

    def test_margin_shrinks_buckets(self, census_small):
        model = BetaLikeness(4.0)
        loose = dp_partition(census_small.sa_distribution(), model, margin=0.0)
        tight = dp_partition(census_small.sa_distribution(), model, margin=0.5)
        assert len(tight) >= len(loose)
        caps = np.asarray(model.threshold(tight.min_freq), dtype=float)
        assert (tight.weights <= 0.5 * caps + 1e-12).all()

    def test_invalid_margin(self, census_small):
        model = BetaLikeness(2.0)
        with pytest.raises(ValueError):
            dp_partition(census_small.sa_distribution(), model, margin=1.0)

    def test_minimality_vs_greedy(self, census_small):
        """The DP never uses more buckets than greedy first-fit."""
        model = BetaLikeness(3.0)
        probs = census_small.sa_distribution()
        assert len(dp_partition(probs, model)) <= len(
            greedy_partition(probs, model)
        )

    def test_bucket_of_value_map(self, example2):
        model = BetaLikeness(2.0)
        part = dp_partition(example2.sa_distribution(), model)
        mapping = part.bucket_of_value()
        assert mapping[0] == mapping[1]
        assert mapping[0] != mapping[2]
        assert len(mapping) == 6


class TestGreedyPartition:
    def test_covers_domain(self, census_small):
        model = BetaLikeness(3.0)
        part = greedy_partition(census_small.sa_distribution(), model)
        seen = np.concatenate(part.buckets)
        assert sorted(seen.tolist()) == list(range(50))

    def test_lemma2_condition_holds(self, census_small):
        model = BetaLikeness(3.0)
        part = greedy_partition(census_small.sa_distribution(), model)
        assert (part.weights < part.f_min + 1e-12).all()


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_dp_partition_satisfies_lemma2_property(data):
    """Every bucket the DP produces obeys Lemma 2 for any distribution."""
    m = data.draw(st.integers(min_value=1, max_value=12))
    raw = data.draw(st.lists(st.integers(1, 100), min_size=m, max_size=m))
    probs = np.array(raw, dtype=float) / np.sum(raw)
    beta = data.draw(st.floats(min_value=0.2, max_value=8.0))
    model = BetaLikeness(beta)
    part = dp_partition(probs, model)
    # Coverage and Lemma 2.
    seen = sorted(np.concatenate(part.buckets).tolist())
    assert seen == list(range(m))
    for bucket, weight in zip(part.buckets, part.weights):
        p_min = probs[bucket].min()
        cap = float(np.asarray(model.threshold(p_min)))
        assert weight <= cap + 1e-9 or len(bucket) == 1
